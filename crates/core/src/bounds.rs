//! The bound recursions behind MOCHE's fast existence checks
//! (Lemma 1, Theorem 1 and Theorem 2 of the paper).
//!
//! For a removal size `h`, define
//!
//! ```text
//! Ω(h)    = c_α * sqrt((m - h) + (m - h)^2 / n)
//! Γ(i, h) = C_T[i] - ((m - h) / n) * C_R[i]
//! M(i, h) = max_{1 <= j <= i} Γ(j, h)
//! ```
//!
//! Lemma 1 shows that `S` (with `|S| = h`) is *qualified* — removing it
//! reverses the failed KS test — iff its cumulative vector satisfies, for
//! every `i`,
//!
//! ```text
//! max(⌈Γ(i,h) - Ω(h)⌉, h - m + C_T[i], C_S[i-1])                 <= C_S[i]
//! C_S[i] <= min(⌊Γ(i,h) + Ω(h)⌋, C_T[i] - C_T[i-1] + C_S[i-1], h)
//! ```
//!
//! Iterating these with `C_S[i-1]` replaced by its own bound yields, per
//! coordinate, a lower bound `l_i^h` and an upper bound `u_i^h`; Theorem 1
//! states that a qualified `h`-subset exists **iff** `l_i^h <= u_i^h` for all
//! `i` — an `O(n + m)` check that replaces `C(m, h)` explicit KS tests.
//!
//! Theorem 2 relaxes Theorem 1 into a *necessary* condition that is monotone
//! in `h`, enabling the binary search of Phase 1 (see [`crate::phase1`]).
//!
//! ### A note on the paper's Example 4
//!
//! The intermediate `(l, u)` pairs printed in the paper's Example 4 are
//! inconsistent with its own Equations 4a/4b (and with Example 6, which uses
//! `l_3^2 = 2` where Example 4 printed `1`). This implementation follows the
//! equations and the proofs; the *conclusions* of Examples 4–6 (no qualified
//! 1-subset, a qualified 2-subset exists, `k̂ = k = 2`, and the constructed
//! explanation `{t_3, t_2}`) all hold and are asserted in tests.

use crate::base_vector::BaseVector;
use crate::cumulative::CumulativeVector;
use crate::ks::KsConfig;

/// `⌈x⌉` with a tolerance: values that are integers up to `eps` rounding
/// noise are not bumped to the next integer.
#[inline]
pub(crate) fn ceil_eps(x: f64, eps: f64) -> i64 {
    (x - eps).ceil() as i64
}

/// `⌊x⌋` with a tolerance, symmetric to [`ceil_eps`].
#[inline]
pub(crate) fn floor_eps(x: f64, eps: f64) -> i64 {
    (x + eps).floor() as i64
}

/// Chunk length for the streaming probe kernels. The per-coordinate loops
/// are written branchless (violations latch into a flag instead of
/// returning) so they auto-vectorize; the early-exit check is hoisted to
/// chunk boundaries, costing at most one extra chunk of work over the
/// per-element exit.
const PROBE_CHUNK: usize = 256;

/// Maximum number of removal sizes one fused
/// [`BoundsContext::necessary_condition_multi`] pass can evaluate.
pub const MAX_WAVEFRONT: usize = 32;

// ### Why the probe kernels may compare in the f64 domain
//
// The rounding path (`BoundsContext::compute`) works on i64 bounds via
// `ceil_eps`/`floor_eps`. The verdict-only kernels below replace those
// per-element round-and-convert steps with direct f64 comparisons. The two
// are *exactly* equivalent, not approximately:
//
// 1. For any real `y` and integer `h`, `⌈y⌉ > h ⟺ y > h` and
//    `⌊y⌋ < 0 ⟺ y < 0`. So `ceil_eps(x, ε) > h ⟺ (x - ε) > h` and
//    `floor_eps(x, ε) < 0 ⟺ (x + ε) < 0`, provided the comparisons use the
//    *same rounded intermediate* `x ∓ ε` the rounding path computes (the
//    kernels keep the identical association order). The `as i64` casts
//    saturate, which preserves both comparisons' verdicts.
//
// 2. Where a kernel keeps the l/u recursion (Theorem 1), the bounds are
//    integer-valued and bounded by ±4(n + m): every candidate — the
//    ⌈·⌉/⌊·⌋ results, `h - m + C_T[i]`, `C_T[i] - C_T[i-1] + u`, `h` — is
//    an integer of magnitude ≤ 4(n + m) < 2^53 (the samples live in
//    memory, so n + m < 2^48), hence exactly representable in f64. f64
//    max/min/compare on exactly-representable integers agree with their
//    i64 counterparts, and f64::ceil/floor are exact operations, so
//    inductively the whole recursion is bit-equivalent to the i64 one.
//
// Equivalence is pinned by `compute_into_matches_compute`,
// `compute_and_exists_qualified_agree` and the `proptest_phase1.rs` suite
// (signed zeros, duplicates, near-eps boundaries).

/// Per-coordinate lower and upper bounds `l_i^h`, `u_i^h` for the elements of
/// any qualified `h`-cumulative vector (indices `0..=q`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HBounds {
    /// The removal size these bounds are for.
    pub h: usize,
    /// `l_i^h` for `0 <= i <= q`.
    pub lower: Vec<i64>,
    /// `u_i^h` for `0 <= i <= q`.
    pub upper: Vec<i64>,
    /// Whether `l_i^h <= u_i^h` holds for every `i` (Theorem 1's condition).
    pub feasible: bool,
}

/// Reusable scratch space for the explain hot path.
///
/// [`BoundsContext::compute`] heap-allocates two fresh `(q + 1)`-length
/// vectors per call; on the workloads the ROADMAP targets (one reference
/// distribution probed against thousands of test windows) those transient
/// allocations dominate the Phase-2 profile. A `BoundsWorkspace` owns every
/// buffer the bound machinery and the Phase-2 construction need and is
/// reused across `h` probes, constructions, alphas and whole explain calls
/// (see [`crate::engine::ExplainEngine`] and [`crate::batch`]).
///
/// The `l`/`u` vectors are fused into one interleaved buffer
/// (`lu[2i] = l_i`, `lu[2i + 1] = u_i`) so each recursion step touches one
/// cache line instead of two.
#[derive(Debug, Clone, Default)]
pub struct BoundsWorkspace {
    /// Interleaved bounds, `lu[2i] = l_i^h`, `lu[2i + 1] = u_i^h`.
    pub(crate) lu: Vec<i64>,
    /// Theorem-3 backward-tightened upper bounds `ū_i` for the current
    /// Phase-2 selection (length `q + 1` while a construction is running).
    pub(crate) ubar: Vec<i64>,
    /// Multiplicities `d_i` of the current Phase-2 selection.
    pub(crate) d: Vec<u64>,
    /// `(index, value)` staging buffer for incremental `ū` propagation.
    pub(crate) scratch: Vec<(usize, i64)>,
    h: usize,
    q: usize,
    feasible: bool,
}

impl BoundsWorkspace {
    /// Creates an empty workspace; buffers grow on first use and are then
    /// retained.
    pub fn new() -> Self {
        Self::default()
    }

    /// The removal size the current bounds were computed for.
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }

    /// `q` of the base vector the current bounds were computed over.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Theorem 1's verdict for the current bounds.
    #[inline]
    pub fn feasible(&self) -> bool {
        self.feasible
    }

    /// `l_i^h` for `0 <= i <= q`.
    #[inline]
    pub fn lower(&self, i: usize) -> i64 {
        self.lu[2 * i]
    }

    /// `u_i^h` for `0 <= i <= q`.
    #[inline]
    pub fn upper(&self, i: usize) -> i64 {
        self.lu[2 * i + 1]
    }

    /// Copies the current bounds into the allocating [`HBounds`] form
    /// (diagnostics and tests; the hot path never calls this).
    ///
    /// # Panics
    ///
    /// Panics if no bounds have been computed into this workspace yet
    /// (see [`BoundsContext::compute_into`]).
    pub fn to_hbounds(&self) -> HBounds {
        assert!(!self.lu.is_empty(), "no bounds computed into this workspace yet");
        HBounds {
            h: self.h,
            lower: (0..=self.q).map(|i| self.lower(i)).collect(),
            upper: (0..=self.q).map(|i| self.upper(i)).collect(),
            feasible: self.feasible,
        }
    }
}

/// Evaluator for Ω, Γ and the Theorem-1/Theorem-2 conditions over one
/// `(R, T)` pair.
#[derive(Debug, Clone, Copy)]
pub struct BoundsContext<'a> {
    base: &'a BaseVector,
    c_alpha: f64,
    eps: f64,
}

impl<'a> BoundsContext<'a> {
    /// Creates a context for the given base vector and KS configuration.
    pub fn new(base: &'a BaseVector, cfg: &KsConfig) -> Self {
        Self { base, c_alpha: cfg.critical_value(), eps: cfg.eps() }
    }

    /// The underlying base vector.
    #[inline]
    pub fn base(&self) -> &'a BaseVector {
        self.base
    }

    /// Re-points this context at a different KS configuration (new alpha
    /// and/or eps) while keeping the base vector. This is what lets
    /// [`Moche::size_profile`](crate::Moche::size_profile) sweep many alphas
    /// over one context instead of rebuilding it per level.
    #[inline]
    pub fn set_config(&mut self, cfg: &KsConfig) {
        self.c_alpha = cfg.critical_value();
        self.eps = cfg.eps();
    }

    /// `Ω(h) = c_α * sqrt((m - h) + (m - h)^2 / n)`.
    ///
    /// This is the per-coordinate slack that the KS threshold allows between
    /// `(m - h) * F_R(x_i)`-scaled counts; it equals
    /// `(m - h) * c_α * sqrt((n + m - h) / (n (m - h)))`.
    #[inline]
    pub fn omega(&self, h: usize) -> f64 {
        let rem = (self.base.m() - h) as f64;
        let n = self.base.n() as f64;
        self.c_alpha * (rem + rem * rem / n).sqrt()
    }

    /// `Γ(i, h) = C_T[i] - ((m - h) / n) * C_R[i]`.
    #[inline]
    pub fn gamma(&self, i: usize, h: usize) -> f64 {
        let rem = (self.base.m() - h) as f64;
        let n = self.base.n() as f64;
        self.base.c_t_plane()[i] - rem / n * self.base.c_r_plane()[i]
    }

    /// Computes the full bound vectors for removal size `h`
    /// (`1 <= h <= m - 1`), following the recursions in the proof of
    /// Theorem 1:
    ///
    /// ```text
    /// l_0 = u_0 = 0
    /// l_i = max(⌈Γ(i,h) - Ω(h)⌉, h - m + C_T[i], l_{i-1})
    /// u_i = min(⌊Γ(i,h) + Ω(h)⌋, C_T[i] - C_T[i-1] + u_{i-1}, h)
    /// ```
    ///
    /// The recursion continues past an infeasible coordinate so the returned
    /// vectors are complete; use [`HBounds::feasible`] for the Theorem-1
    /// verdict, or [`exists_qualified`](Self::exists_qualified) for the
    /// early-exit version.
    pub fn compute(&self, h: usize) -> HBounds {
        let q = self.base.q();
        debug_assert!(h >= 1 && h < self.base.m(), "h must be in 1..m");
        let omega = self.omega(h);
        let h_i = h as i64;
        let m_i = self.base.m() as i64;
        let ct_plane = self.base.c_t_plane();
        let mut lower = Vec::with_capacity(q + 1);
        let mut upper = Vec::with_capacity(q + 1);
        lower.push(0i64);
        upper.push(0i64);
        let mut feasible = true;
        for i in 1..=q {
            let gamma = self.gamma(i, h);
            // The plane-to-i64 casts are exact: counts are integers < 2^53.
            let ct = ct_plane[i] as i64;
            let ct_prev = ct_plane[i - 1] as i64;
            let l = ceil_eps(gamma - omega, self.eps).max(h_i - m_i + ct).max(lower[i - 1]);
            let u = floor_eps(gamma + omega, self.eps).min(ct - ct_prev + upper[i - 1]).min(h_i);
            if l > u {
                feasible = false;
            }
            lower.push(l);
            upper.push(u);
        }
        HBounds { h, lower, upper, feasible }
    }

    /// [`compute`](Self::compute) without the allocations: fills `ws`'s
    /// interleaved buffer in place, returning Theorem 1's verdict. The
    /// buffers are reused verbatim across calls, so a workspace that has
    /// seen one `(q, h)` probe never allocates for any later probe with the
    /// same or smaller `q`.
    pub fn compute_into(&self, h: usize, ws: &mut BoundsWorkspace) -> bool {
        let q = self.base.q();
        debug_assert!(h >= 1 && h < self.base.m(), "h must be in 1..m");
        let omega = self.omega(h);
        let scale = (self.base.m() - h) as f64 / self.base.n() as f64;
        let h_f = h as f64;
        let hm = h_f - self.base.m() as f64; // h - m, exact (see module note)
        let eps = self.eps;
        let ct_plane = &self.base.c_t_plane()[1..];
        let cr_plane = &self.base.c_r_plane()[1..];
        ws.h = h;
        ws.q = q;
        ws.lu.clear();
        ws.lu.reserve(2 * (q + 1));
        ws.lu.push(0i64); // l_0
        ws.lu.push(0i64); // u_0
                          // The recursion runs on exactly-integer f64 bounds (bit-equivalent
                          // to the i64 recursion of `compute`, per the f64-domain note above)
                          // and keeps the ceil_eps/floor_eps rounding path — this method must
                          // emit the integer bound vectors, not just a verdict.
        let (mut l_prev, mut u_prev) = (0.0f64, 0.0f64);
        let mut ct_prev = 0.0f64;
        let mut feasible = true;
        for (&ct, &cr) in ct_plane.iter().zip(cr_plane) {
            let gamma = ct - scale * cr;
            let l = ((gamma - omega) - eps).ceil().max(hm + ct).max(l_prev);
            let u = ((gamma + omega) + eps).floor().min((ct - ct_prev) + u_prev).min(h_f);
            feasible &= l <= u;
            ws.lu.push(l as i64);
            ws.lu.push(u as i64);
            l_prev = l;
            u_prev = u;
            ct_prev = ct;
        }
        ws.feasible = feasible;
        feasible
    }

    /// Theorem 1: whether a qualified `h`-cumulative vector (equivalently, a
    /// qualified `h`-subset) exists. `O(n + m)` time, `O(1)` extra space —
    /// this streaming path never materializes the bound vectors. The
    /// recursion is branchless over the f64 planes (violations latch,
    /// early exit at chunk boundaries); verdicts are identical to
    /// [`compute`](Self::compute) per the f64-domain note above.
    pub fn exists_qualified(&self, h: usize) -> bool {
        let q = self.base.q();
        debug_assert!(h >= 1 && h < self.base.m(), "h must be in 1..m");
        let omega = self.omega(h);
        let scale = (self.base.m() - h) as f64 / self.base.n() as f64;
        let h_f = h as f64;
        let hm = h_f - self.base.m() as f64; // h - m, exact
        let eps = self.eps;
        let ct_plane = &self.base.c_t_plane()[1..];
        let cr_plane = &self.base.c_r_plane()[1..];
        let mut l_prev = 0.0f64;
        let mut u_prev = 0.0f64;
        let mut ct_prev = 0.0f64;
        let mut infeasible = false;
        let mut start = 0usize;
        while start < q {
            let end = (start + PROBE_CHUNK).min(q);
            for (&ct, &cr) in ct_plane[start..end].iter().zip(&cr_plane[start..end]) {
                let gamma = ct - scale * cr;
                let l = ((gamma - omega) - eps).ceil().max(hm + ct).max(l_prev);
                let u = ((gamma + omega) + eps).floor().min((ct - ct_prev) + u_prev).min(h_f);
                infeasible |= l > u;
                l_prev = l;
                u_prev = u;
                ct_prev = ct;
            }
            // Once some coordinate violated, no later coordinate can clear
            // it — the scalar early exit, hoisted to the chunk boundary.
            if infeasible {
                return false;
            }
            start = end;
        }
        true
    }

    /// Theorem 2: the relaxed *necessary* condition for the existence of a
    /// qualified `h`-cumulative vector:
    ///
    /// ```text
    /// (5a)  0 <= ⌊Γ(i,h) + Ω(h)⌋
    /// (5b)  ⌈M(i,h) - Ω(h)⌉ <= h
    /// (5c)  M(i,h) - Ω(h) <= Γ(i,h) + Ω(h)
    /// ```
    ///
    /// If `h` satisfies the condition then so does `h + 1` (monotonicity),
    /// which is what makes the Phase-1 binary search and the wavefront
    /// search ([`crate::phase1::lower_bound_wavefront`]) sound.
    ///
    /// The loop is branchless over the f64 planes: since the condition only
    /// needs a verdict, (5a) and (5b) compare directly in the f64 domain —
    /// `⌊y⌋ < 0 ⟺ y < 0` and `⌈y⌉ > h ⟺ y > h` — instead of rounding per
    /// element (see the f64-domain note above for the exact-equivalence
    /// argument).
    pub fn necessary_condition(&self, h: usize) -> bool {
        let q = self.base.q();
        debug_assert!(h >= 1 && h < self.base.m(), "h must be in 1..m");
        let omega = self.omega(h);
        let scale = (self.base.m() - h) as f64 / self.base.n() as f64;
        let h_f = h as f64;
        let eps = self.eps;
        let ct_plane = &self.base.c_t_plane()[1..];
        let cr_plane = &self.base.c_r_plane()[1..];
        let mut m_run = f64::NEG_INFINITY; // M(i, h), running max of Γ
        let mut fail = false;
        let mut start = 0usize;
        while start < q {
            let end = (start + PROBE_CHUNK).min(q);
            for (&ct, &cr) in ct_plane[start..end].iter().zip(&cr_plane[start..end]) {
                let gamma = ct - scale * cr;
                m_run = if gamma > m_run { gamma } else { m_run };
                // `ge` and `mo` reproduce the rounding path's intermediates
                // with the identical association: (Γ + Ω) + ε and M - Ω.
                let ge = (gamma + omega) + eps;
                let mo = m_run - omega;
                fail |= ge < 0.0; // (5a): ⌊Γ + Ω + ε⌋ < 0
                fail |= mo - eps > h_f; // (5b): ⌈M - Ω - ε⌉ > h
                fail |= mo > ge; // (5c)
            }
            // A latched failure never clears — the scalar early exit,
            // hoisted to the chunk boundary.
            if fail {
                return false;
            }
            start = end;
        }
        true
    }

    /// [`necessary_condition`](Self::necessary_condition) for up to
    /// [`MAX_WAVEFRONT`] removal sizes in a *single* pass over `C_T`/`C_R`:
    /// one traversal evaluates every lane's predicate simultaneously, so
    /// the memory traffic and the per-coordinate loads are amortized across
    /// all probes and the per-lane arithmetic auto-vectorizes. `ok[j]` is
    /// set to the exact verdict `necessary_condition(hs[j])` would return.
    ///
    /// This is the kernel behind the Phase-1 wavefront size search
    /// ([`crate::phase1::lower_bound_wavefront`]).
    ///
    /// # Panics
    ///
    /// Panics if `hs` is empty, longer than [`MAX_WAVEFRONT`], or not the
    /// same length as `ok`.
    pub fn necessary_condition_multi(&self, hs: &[usize], ok: &mut [bool]) {
        assert!(!hs.is_empty() && hs.len() <= MAX_WAVEFRONT, "1..=MAX_WAVEFRONT probes required");
        assert_eq!(hs.len(), ok.len(), "one verdict slot per probe");
        // Monomorphic lane widths keep the per-element inner loop a
        // fixed-trip-count, fully unrollable body at every probe count.
        match hs.len() {
            1..=4 => self.necessary_condition_lanes::<4>(hs, ok),
            5..=8 => self.necessary_condition_lanes::<8>(hs, ok),
            9..=16 => self.necessary_condition_lanes::<16>(hs, ok),
            _ => self.necessary_condition_lanes::<32>(hs, ok),
        }
    }

    /// The fixed-width wavefront kernel: `B` lanes of the branchless
    /// [`necessary_condition`](Self::necessary_condition) loop, evaluated
    /// per coordinate. The lane loop is a fixed trip count over plain
    /// `f64`/`bool` arrays, which the auto-vectorizer maps onto SIMD lanes;
    /// small `B` keeps all lane state in registers (large `B` spills — see
    /// [`crate::phase1::WAVEFRONT_PROBES`]). Unused lanes duplicate the
    /// last probe; their verdicts are computed and discarded.
    fn necessary_condition_lanes<const B: usize>(&self, hs: &[usize], ok: &mut [bool]) {
        let q = self.base.q();
        let m = self.base.m();
        let n_f = self.base.n() as f64;
        let eps = self.eps;
        let count = hs.len();
        let mut scale = [0.0f64; B];
        let mut omega = [0.0f64; B];
        let mut h_f = [0.0f64; B];
        for l in 0..B {
            let h = hs[l.min(count - 1)];
            debug_assert!(h >= 1 && h < m, "h must be in 1..m");
            scale[l] = (m - h) as f64 / n_f;
            omega[l] = self.omega(h);
            h_f[l] = h as f64;
        }
        let ct_plane = &self.base.c_t_plane()[1..];
        let cr_plane = &self.base.c_r_plane()[1..];
        let mut m_run = [f64::NEG_INFINITY; B];
        let mut fail = [false; B];
        let mut start = 0usize;
        while start < q {
            let end = (start + PROBE_CHUNK).min(q);
            for (&ct, &cr) in ct_plane[start..end].iter().zip(&cr_plane[start..end]) {
                for l in 0..B {
                    let gamma = ct - scale[l] * cr;
                    m_run[l] = if gamma > m_run[l] { gamma } else { m_run[l] };
                    let ge = (gamma + omega[l]) + eps;
                    let mo = m_run[l] - omega[l];
                    fail[l] = fail[l] | (ge < 0.0) | (mo - eps > h_f[l]) | (mo > ge);
                }
            }
            // A latched failure never clears, so once every lane failed the
            // remaining coordinates cannot change any verdict.
            if fail.iter().all(|&f| f) {
                break;
            }
            start = end;
        }
        for (o, &f) in ok.iter_mut().zip(&fail) {
            *o = !f;
        }
    }

    /// Constructs *some* qualified `h`-cumulative vector as in the
    /// sufficiency proof of Theorem 1: start from `C[q] = u_q^h` and walk
    /// down with `C[i-1] = min(u_{i-1}^h, C[i])`.
    ///
    /// Returns `None` if no qualified `h`-cumulative vector exists.
    pub fn construct_witness(&self, h: usize) -> Option<CumulativeVector> {
        let b = self.compute(h);
        if !b.feasible {
            return None;
        }
        let q = self.base.q();
        let mut c = vec![0i64; q + 1];
        c[q] = b.upper[q];
        for i in (1..=q).rev() {
            c[i - 1] = b.upper[i - 1].min(c[i]);
        }
        debug_assert!(c.iter().all(|&x| x >= 0));
        Some(CumulativeVector::new(c.into_iter().map(|x| x as u64).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_setup() -> (Vec<f64>, Vec<f64>, KsConfig) {
        let r = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
        let t = vec![13.0, 13.0, 12.0, 20.0];
        (r, t, KsConfig::new(0.3).unwrap())
    }

    #[test]
    fn ceil_floor_eps_handle_float_noise() {
        let eps = 1e-9;
        assert_eq!(ceil_eps(3.0 + 1e-12, eps), 3);
        assert_eq!(ceil_eps(3.0 + 1e-6, eps), 4);
        assert_eq!(ceil_eps(2.3, eps), 3);
        assert_eq!(floor_eps(3.0 - 1e-12, eps), 3);
        assert_eq!(floor_eps(3.0 - 1e-6, eps), 2);
        assert_eq!(floor_eps(2.7, eps), 2);
        assert_eq!(ceil_eps(-0.978, eps), 0);
    }

    #[test]
    fn omega_matches_threshold_scaling() {
        // Ω(h) must equal (m - h) * threshold(n, m - h) / 1, since
        // threshold = c_α sqrt((n + m - h)/(n (m - h))).
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        for h in 1..t.len() {
            let rem = t.len() - h;
            let direct = rem as f64 * cfg.threshold(r.len(), rem);
            assert!((ctx.omega(h) - direct).abs() < 1e-12, "h = {h}");
        }
    }

    #[test]
    fn example_4_no_qualified_1_subset() {
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        // Example 4: l_2^1 > u_2^1, so no qualified 1-subset exists.
        let b = ctx.compute(1);
        assert!(!b.feasible);
        assert!(b.lower[2] > b.upper[2], "bounds = {b:?}");
        assert!(!ctx.exists_qualified(1));
    }

    #[test]
    fn example_4_qualified_2_subset_exists() {
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let b = ctx.compute(2);
        assert!(b.feasible, "bounds = {b:?}");
        assert!(ctx.exists_qualified(2));
        // The first coordinate's bounds match the paper: (l_1, u_1) = (0, 1).
        assert_eq!((b.lower[1], b.upper[1]), (0, 1));
        // C_S[q] is pinned to h for any qualified vector.
        assert_eq!((b.lower[4], b.upper[4]), (2, 2));
    }

    #[test]
    fn compute_into_matches_compute() {
        let r: Vec<f64> = (0..60).map(|i| f64::from(i % 10)).collect();
        let t: Vec<f64> = (0..40).map(|i| f64::from(i % 4) + 5.0).collect();
        let base = BaseVector::build(&r, &t).unwrap();
        let cfg = KsConfig::new(0.05).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let mut ws = BoundsWorkspace::new();
        for h in 1..t.len() {
            let reference = ctx.compute(h);
            let feasible = ctx.compute_into(h, &mut ws);
            assert_eq!(feasible, reference.feasible, "h = {h}");
            assert_eq!(ws.to_hbounds(), reference, "h = {h}");
            assert_eq!(ws.h(), h);
            assert_eq!(ws.q(), base.q());
        }
    }

    #[test]
    fn workspace_buffers_are_reused_across_probes() {
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let mut ws = BoundsWorkspace::new();
        ctx.compute_into(2, &mut ws);
        let cap = ws.lu.capacity();
        for h in 1..t.len() {
            ctx.compute_into(h, &mut ws);
        }
        assert_eq!(ws.lu.capacity(), cap, "probe loop must not grow the buffer");
    }

    #[test]
    fn set_config_matches_fresh_context() {
        let (r, t, _) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let loose = KsConfig::new(0.3).unwrap();
        let strict = KsConfig::new(0.05).unwrap();
        let mut ctx = BoundsContext::new(&base, &loose);
        ctx.set_config(&strict);
        let fresh = BoundsContext::new(&base, &strict);
        for h in 1..t.len() {
            assert_eq!(ctx.compute(h), fresh.compute(h), "h = {h}");
            assert_eq!(ctx.necessary_condition(h), fresh.necessary_condition(h));
        }
    }

    #[test]
    fn compute_and_exists_qualified_agree() {
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        for h in 1..t.len() {
            assert_eq!(ctx.compute(h).feasible, ctx.exists_qualified(h), "h = {h}");
        }
    }

    #[test]
    fn witness_is_a_qualified_subset() {
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        assert!(ctx.construct_witness(1).is_none());
        let w = ctx.construct_witness(2).expect("h = 2 is feasible");
        assert_eq!(w.subset_size(), 2);
        assert!(w.is_subset_of_test(&base));
        // Removing the witness reverses the failed test.
        let counts = w.counts();
        let outcome = base.outcome_after_removal(counts.as_slice(), &cfg);
        assert!(outcome.passes(), "outcome = {outcome:?}");
    }

    #[test]
    fn example_5_necessary_condition() {
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        // Example 5: h = 2 satisfies Theorem 2, h = 1 does not.
        assert!(ctx.necessary_condition(2));
        assert!(!ctx.necessary_condition(1));
    }

    #[test]
    fn multi_probe_matches_scalar_necessary_condition() {
        // Instances large enough to cross several PROBE_CHUNK boundaries,
        // and tiny ones; every lane width (1..=MAX_WAVEFRONT) exercised.
        let instances: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (
                (0..1200).map(|i| f64::from(i % 37)).collect(),
                (0..900).map(|i| f64::from(i % 19) + 9.0).collect(),
            ),
            (vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0], vec![13.0, 13.0, 12.0, 20.0]),
        ];
        for (r, t) in instances {
            let base = BaseVector::build(&r, &t).unwrap();
            let cfg = KsConfig::new(0.1).unwrap();
            let ctx = BoundsContext::new(&base, &cfg);
            let m = base.m();
            for width in 1..=MAX_WAVEFRONT {
                let hs: Vec<usize> = (0..width).map(|j| 1 + j * (m - 2) / width).collect();
                let mut ok = vec![false; width];
                ctx.necessary_condition_multi(&hs, &mut ok);
                for (&h, &got) in hs.iter().zip(&ok) {
                    assert_eq!(got, ctx.necessary_condition(h), "width {width}, h = {h}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one verdict slot per probe")]
    fn multi_probe_rejects_mismatched_outputs() {
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let mut ok = [false; 3];
        ctx.necessary_condition_multi(&[1, 2], &mut ok);
    }

    #[test]
    fn necessary_condition_is_monotone_in_h() {
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let mut seen_true = false;
        for h in 1..t.len() {
            let ok = ctx.necessary_condition(h);
            if seen_true {
                assert!(ok, "monotonicity violated at h = {h}");
            }
            seen_true |= ok;
        }
        assert!(seen_true);
    }

    #[test]
    fn theorem1_implies_theorem2() {
        // The necessary condition must hold whenever Theorem 1 holds.
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        for h in 1..t.len() {
            if ctx.exists_qualified(h) {
                assert!(ctx.necessary_condition(h), "h = {h}");
            }
        }
    }

    #[test]
    fn gamma_at_q_equals_removed_count_offset() {
        // Γ(q, h) = m - (m - h)/n * n = h.
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        for h in 1..t.len() {
            assert!((ctx.gamma(base.q(), h) - h as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn bounds_are_monotone_lower_and_bounded_by_h() {
        let r: Vec<f64> = (0..60).map(|i| f64::from(i % 10)).collect();
        let t: Vec<f64> = (0..40).map(|i| f64::from(i % 4) + 5.0).collect();
        let base = BaseVector::build(&r, &t).unwrap();
        let cfg = KsConfig::new(0.05).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        for h in [1usize, 5, 10, 20, 39] {
            let b = ctx.compute(h);
            for i in 1..=base.q() {
                assert!(b.lower[i] >= b.lower[i - 1], "l must be non-decreasing");
                assert!(b.upper[i] <= h as i64, "u must be <= h");
                assert!(b.lower[i] >= 0);
            }
            if b.feasible {
                assert_eq!(b.lower[base.q()], h as i64, "C_S[q] pinned to h (lower)");
                assert_eq!(b.upper[base.q()], h as i64, "C_S[q] pinned to h (upper)");
            }
        }
    }

    #[test]
    fn witness_valid_on_random_style_instance() {
        let r: Vec<f64> = (0..60).map(|i| f64::from(i % 10)).collect();
        let t: Vec<f64> = (0..40).map(|i| f64::from(i % 4) + 5.0).collect();
        let base = BaseVector::build(&r, &t).unwrap();
        let cfg = KsConfig::new(0.05).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        assert!(base.outcome(&cfg).rejected, "instance should fail the KS test");
        let mut found = false;
        for h in 1..t.len() {
            if let Some(w) = ctx.construct_witness(h) {
                found = true;
                assert!(w.is_subset_of_test(&base), "witness at h = {h} not a subset");
                let outcome = base.outcome_after_removal(w.counts().as_slice(), &cfg);
                assert!(outcome.passes(), "witness at h = {h} does not reverse the test");
            }
        }
        assert!(found, "some h must admit a qualified subset");
    }
}
