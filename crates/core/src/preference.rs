//! User preference lists over the test set (Section 3.3 of the paper).
//!
//! A preference list `L` is a total order on the points of the test set `T`:
//! a permutation of the original indices `0..m`, most preferred first. MOCHE
//! returns the explanation with the smallest lexicographical order under
//! `L`, which is the explanation "most consistent with the user's domain
//! knowledge".

use crate::error::{MocheError, PreferenceDefect};

/// A validated total order over the test points: `order[rank] = index`,
/// with rank 0 the most preferred point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreferenceList {
    order: Vec<usize>,
}

impl PreferenceList {
    /// Wraps an explicit order. `order` must be a permutation of `0..m`
    /// where `m = order.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidPreference`] on duplicates or
    /// out-of-range indices.
    pub fn new(order: Vec<usize>) -> Result<Self, MocheError> {
        let m = order.len();
        let mut seen = vec![false; m];
        for &idx in &order {
            if idx >= m {
                return Err(MocheError::InvalidPreference {
                    reason: PreferenceDefect::OutOfRange(idx),
                });
            }
            if seen[idx] {
                return Err(MocheError::InvalidPreference {
                    reason: PreferenceDefect::DuplicateIndex(idx),
                });
            }
            seen[idx] = true;
        }
        Ok(Self { order })
    }

    /// The identity order: point `i` has rank `i`.
    pub fn identity(m: usize) -> Self {
        Self { order: (0..m).collect() }
    }

    /// Rewrites this list into the identity order over `m` points, reusing
    /// the existing buffer. The recycled counterpart of
    /// [`identity`](Self::identity): a warm list re-fills with zero heap
    /// allocations once its buffer has grown to the working size.
    pub fn fill_identity(&mut self, m: usize) {
        self.order.clear();
        self.order.extend(0..m);
    }

    /// Rewrites this list from *descending* scores, reusing the existing
    /// buffer — the recycled counterpart (and shared implementation) of
    /// [`from_scores_desc`](Self::from_scores_desc): zero heap allocations
    /// when warm. This is the shape streaming `score` callbacks use to
    /// keep scored streams on the zero-allocation path (see
    /// [`ScoreIntoFn`](crate::batch::ScoreIntoFn)).
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidPreference`] if any score is NaN; the
    /// list is left unchanged.
    pub fn fill_from_scores_desc(&mut self, scores: &[f64]) -> Result<(), MocheError> {
        if let Some(pos) = scores.iter().position(|s| s.is_nan()) {
            return Err(MocheError::InvalidPreference {
                reason: PreferenceDefect::NonFiniteScore(pos),
            });
        }
        self.order.clear();
        self.order.extend(0..scores.len());
        // The index tie-break makes the comparator a strict total order
        // (no two elements compare equal), so the allocation-free unstable
        // sort is fully deterministic.
        self.order
            .sort_unstable_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
        Ok(())
    }

    /// Rewrites this list from *ascending* scores; the recycled counterpart
    /// of [`from_scores_asc`](Self::from_scores_asc). See
    /// [`fill_from_scores_desc`](Self::fill_from_scores_desc).
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidPreference`] if any score is NaN; the
    /// list is left unchanged.
    pub fn fill_from_scores_asc(&mut self, scores: &[f64]) -> Result<(), MocheError> {
        if let Some(pos) = scores.iter().position(|s| s.is_nan()) {
            return Err(MocheError::InvalidPreference {
                reason: PreferenceDefect::NonFiniteScore(pos),
            });
        }
        self.order.clear();
        self.order.extend(0..scores.len());
        self.order
            .sort_unstable_by(|&a, &b| scores[a].total_cmp(&scores[b]).then_with(|| a.cmp(&b)));
        Ok(())
    }

    /// The reverse of the identity order.
    pub fn reversed(m: usize) -> Self {
        Self { order: (0..m).rev().collect() }
    }

    /// Ranks points by *descending* score (highest score = most preferred),
    /// breaking ties by ascending original index (a deterministic stand-in
    /// for the paper's "sorted arbitrarily").
    ///
    /// This is how the paper derives preference lists from outlier scores
    /// (Spectral Residual) or from attribute orderings (health-authority
    /// population, age group).
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidPreference`] if any score is NaN.
    pub fn from_scores_desc(scores: &[f64]) -> Result<Self, MocheError> {
        let mut list = Self { order: Vec::new() };
        list.fill_from_scores_desc(scores)?;
        Ok(list)
    }

    /// Ranks points by *ascending* score (lowest score = most preferred).
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidPreference`] if any score is NaN.
    pub fn from_scores_asc(scores: &[f64]) -> Result<Self, MocheError> {
        let mut list = Self { order: Vec::new() };
        list.fill_from_scores_asc(scores)?;
        Ok(list)
    }

    /// A uniformly random order drawn with a small embedded SplitMix64-based
    /// Fisher-Yates shuffle. Deterministic for a given `(m, seed)` pair, so
    /// experiments remain reproducible without pulling an RNG dependency
    /// into the core crate.
    pub fn random(m: usize, seed: u64) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            // SplitMix64 (public domain, Steele et al.).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut order: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        Self { order }
    }

    /// Number of points ordered by this list.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The underlying order: `as_order()[rank] = original index`.
    #[inline]
    pub fn as_order(&self) -> &[usize] {
        &self.order
    }

    /// The rank of each original index: `ranks()[index] = rank`.
    pub fn ranks(&self) -> Vec<usize> {
        let mut ranks = Vec::new();
        self.ranks_into(&mut ranks);
        ranks
    }

    /// Fills `out` with the rank of each original index (`out[index] =
    /// rank`), reusing its buffer — the recycled counterpart of
    /// [`ranks`](Self::ranks). A warm buffer of the working size is
    /// rewritten with zero heap allocations.
    pub fn ranks_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.resize(self.order.len(), 0);
        for (rank, &idx) in self.order.iter().enumerate() {
            out[idx] = rank;
        }
    }

    /// Checks that this list orders exactly `expected` points — the shared
    /// boundary validation of every explain path (the 1-D engine, the
    /// brute-force oracle, and the 2-D explainers in `moche-multidim`).
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::PreferenceLengthMismatch`] when the lengths
    /// differ.
    pub fn check_length(&self, expected: usize) -> Result<(), MocheError> {
        if self.len() != expected {
            return Err(MocheError::PreferenceLengthMismatch { expected, actual: self.len() });
        }
        Ok(())
    }

    /// Compares two explanations (as sets of original indices) in the
    /// lexicographical order induced by this list (Definition 2). Smaller
    /// means more comprehensible. Sets of different sizes are compared by
    /// the prefix rule of the paper's footnote (a proper prefix precedes).
    pub fn lex_cmp(&self, a: &[usize], b: &[usize]) -> std::cmp::Ordering {
        let ranks = self.ranks();
        let mut ra: Vec<usize> = a.iter().map(|&i| ranks[i]).collect();
        let mut rb: Vec<usize> = b.iter().map(|&i| ranks[i]).collect();
        ra.sort_unstable();
        rb.sort_unstable();
        ra.cmp(&rb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn validates_permutations() {
        assert!(PreferenceList::new(vec![2, 0, 1]).is_ok());
        assert!(matches!(
            PreferenceList::new(vec![0, 0, 1]),
            Err(MocheError::InvalidPreference { reason: PreferenceDefect::DuplicateIndex(0) })
        ));
        assert!(matches!(
            PreferenceList::new(vec![0, 3]),
            Err(MocheError::InvalidPreference { reason: PreferenceDefect::OutOfRange(3) })
        ));
        assert!(PreferenceList::new(vec![]).is_ok());
    }

    #[test]
    fn identity_and_reversed() {
        assert_eq!(PreferenceList::identity(3).as_order(), &[0, 1, 2]);
        assert_eq!(PreferenceList::reversed(3).as_order(), &[2, 1, 0]);
    }

    #[test]
    fn scores_desc_orders_highest_first() {
        let l = PreferenceList::from_scores_desc(&[0.5, 2.0, 1.0]).unwrap();
        assert_eq!(l.as_order(), &[1, 2, 0]);
    }

    #[test]
    fn scores_asc_orders_lowest_first() {
        let l = PreferenceList::from_scores_asc(&[0.5, 2.0, 1.0]).unwrap();
        assert_eq!(l.as_order(), &[0, 2, 1]);
    }

    #[test]
    fn score_ties_break_by_index() {
        let l = PreferenceList::from_scores_desc(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(l.as_order(), &[0, 1, 2]);
        let l = PreferenceList::from_scores_asc(&[1.0, 1.0]).unwrap();
        assert_eq!(l.as_order(), &[0, 1]);
    }

    #[test]
    fn nan_scores_rejected() {
        assert!(PreferenceList::from_scores_desc(&[1.0, f64::NAN]).is_err());
        assert!(PreferenceList::from_scores_asc(&[f64::NAN]).is_err());
    }

    #[test]
    fn fill_variants_match_allocating_constructors() {
        let mut recycled = PreferenceList::identity(0);
        recycled.fill_identity(5);
        assert_eq!(recycled, PreferenceList::identity(5));
        // Ties, negatives, infinities and signed zeros: the unstable sort
        // with the index tie-break must reproduce the stable sort exactly.
        let scores = [1.0, -3.5, 1.0, f64::INFINITY, 0.0, -0.0, 1.0, f64::NEG_INFINITY];
        recycled.fill_from_scores_desc(&scores).unwrap();
        assert_eq!(recycled, PreferenceList::from_scores_desc(&scores).unwrap());
        recycled.fill_from_scores_asc(&scores).unwrap();
        assert_eq!(recycled, PreferenceList::from_scores_asc(&scores).unwrap());
        // NaN rejection leaves the previous contents untouched.
        let before = recycled.clone();
        assert!(recycled.fill_from_scores_desc(&[1.0, f64::NAN]).is_err());
        assert!(recycled.fill_from_scores_asc(&[f64::NAN]).is_err());
        assert_eq!(recycled, before);
    }

    #[test]
    fn fill_reuses_the_buffer() {
        let mut recycled = PreferenceList::identity(64);
        let cap = recycled.order.capacity();
        for round in 0..4u64 {
            let scores: Vec<f64> =
                (0..64).map(|i| f64::from((i * 7 + round as u32) % 13)).collect();
            recycled.fill_from_scores_desc(&scores).unwrap();
            recycled.fill_identity(32);
            recycled.fill_from_scores_asc(&scores[..40]).unwrap();
        }
        assert_eq!(recycled.order.capacity(), cap, "warm fills must not reallocate");
    }

    #[test]
    fn random_is_deterministic_permutation() {
        let a = PreferenceList::random(100, 7);
        let b = PreferenceList::random(100, 7);
        let c = PreferenceList::random(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Must be a permutation.
        let mut sorted = a.as_order().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ranks_invert_order() {
        let l = PreferenceList::new(vec![2, 0, 1]).unwrap();
        assert_eq!(l.ranks(), vec![1, 2, 0]);
    }

    #[test]
    fn ranks_into_matches_ranks_and_reuses_the_buffer() {
        let l = PreferenceList::new(vec![2, 0, 1]).unwrap();
        let mut out = vec![9usize; 64];
        let cap = out.capacity();
        l.ranks_into(&mut out);
        assert_eq!(out, l.ranks());
        assert_eq!(out.capacity(), cap, "warm fills must not reallocate");
    }

    #[test]
    fn check_length_reports_both_lengths() {
        let l = PreferenceList::identity(3);
        assert!(l.check_length(3).is_ok());
        match l.check_length(5) {
            Err(MocheError::PreferenceLengthMismatch { expected: 5, actual: 3 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lex_cmp_follows_definition_2() {
        // L = [2, 0, 1]: point 2 is most preferred.
        let l = PreferenceList::new(vec![2, 0, 1]).unwrap();
        // {2} precedes {0}: rank 0 < rank 1.
        assert_eq!(l.lex_cmp(&[2], &[0]), Ordering::Less);
        // {2, 1} vs {2, 0}: first elements tie, then rank 2 vs rank 1.
        assert_eq!(l.lex_cmp(&[2, 1], &[2, 0]), Ordering::Greater);
        // Prefix precedes longer sequence.
        assert_eq!(l.lex_cmp(&[2], &[2, 0]), Ordering::Less);
        // Equal sets are equal.
        assert_eq!(l.lex_cmp(&[0, 1], &[1, 0]), Ordering::Equal);
    }

    #[test]
    fn random_small_sizes() {
        assert_eq!(PreferenceList::random(0, 1).len(), 0);
        assert_eq!(PreferenceList::random(1, 1).as_order(), &[0]);
    }
}
