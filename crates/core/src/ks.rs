//! The two-sample Kolmogorov-Smirnov test.
//!
//! The KS test checks whether a test multiset `T` is sampled from the same
//! distribution as a reference multiset `R` by comparing their empirical
//! cumulative distribution functions (ECDFs):
//!
//! ```text
//! D(R, T) = max_{x in R ∪ T} |F_R(x) - F_T(x)|
//! ```
//!
//! For a significance level `α` the decision threshold (the "target p-value"
//! in the paper's terminology) is
//!
//! ```text
//! p = c_α * sqrt((n + m) / (n * m)),   c_α = sqrt(-ln(α / 2) / 2)
//! ```
//!
//! and the null hypothesis ("same distribution") is rejected iff `D > p`.
//! A rejected test is called a *failed* KS test.

use crate::error::{MocheError, SetKind};

/// The largest significance level for which Proposition 1 of the paper
/// guarantees that a counterfactual explanation exists: `2 / e^2`.
pub const ALPHA_EXISTENCE_GUARANTEE: f64 = 2.0 / (std::f64::consts::E * std::f64::consts::E);

/// Default numerical slack used when comparing floating-point quantities that
/// are equal in exact real arithmetic. See `DESIGN.md` ("Numerical
/// consistency") for the rationale.
pub const DEFAULT_EPS: f64 = 1e-9;

/// Configuration shared by every KS-test decision in the crate.
///
/// All code paths (the direct KS check, the Lemma-1 bound recursions, and the
/// brute-force oracle) take their `alpha` and numerical slack `eps` from a
/// single `KsConfig` so that their decisions are mutually consistent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsConfig {
    alpha: f64,
    eps: f64,
}

impl KsConfig {
    /// Creates a configuration for significance level `alpha` with the
    /// default numerical slack.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(MocheError::InvalidAlpha { alpha });
        }
        Ok(Self { alpha, eps: DEFAULT_EPS })
    }

    /// Overrides the numerical slack. `eps` must be finite and non-negative;
    /// `0.0` requests exact floating-point comparisons.
    #[must_use]
    pub fn with_eps(mut self, eps: f64) -> Self {
        assert!(eps.is_finite() && eps >= 0.0, "eps must be finite and non-negative");
        self.eps = eps;
        self
    }

    /// The configured significance level.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The configured numerical slack.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Whether existence of an explanation is guaranteed by Proposition 1
    /// (`alpha <= 2/e^2`).
    #[inline]
    pub fn existence_guaranteed(&self) -> bool {
        self.alpha <= ALPHA_EXISTENCE_GUARANTEE
    }

    /// The critical value `c_α = sqrt(-ln(α/2) / 2)`.
    #[inline]
    pub fn critical_value(&self) -> f64 {
        (-(self.alpha / 2.0).ln() / 2.0).sqrt()
    }

    /// The decision threshold `p = c_α * sqrt((n + m) / (n * m))` for sample
    /// sizes `n` and `m`.
    #[inline]
    pub fn threshold(&self, n: usize, m: usize) -> f64 {
        debug_assert!(n > 0 && m > 0);
        let (n, m) = (n as f64, m as f64);
        self.critical_value() * ((n + m) / (n * m)).sqrt()
    }

    /// Decides a test given the statistic and sizes: `true` iff the null
    /// hypothesis is rejected (`D > p`, modulo the numerical slack).
    #[inline]
    pub fn rejects(&self, statistic: f64, n: usize, m: usize) -> bool {
        statistic > self.threshold(n, m) + self.eps
    }
}

/// The outcome of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsOutcome {
    /// The KS statistic `D(R, T)`.
    pub statistic: f64,
    /// The decision threshold at the configured significance level.
    pub threshold: f64,
    /// Whether the null hypothesis was rejected (the test *failed*).
    pub rejected: bool,
    /// Size of the reference set.
    pub n: usize,
    /// Size of the test set.
    pub m: usize,
}

impl KsOutcome {
    /// Whether the two samples pass the test (the null hypothesis is *not*
    /// rejected).
    #[inline]
    pub fn passes(&self) -> bool {
        !self.rejected
    }
}

/// The Kolmogorov distribution's complementary CDF
/// `Q(λ) = 2 Σ_{j>=1} (-1)^{j-1} e^{-2 j² λ²}`, the asymptotic p-value of a
/// scaled KS statistic. Series truncated at machine precision; `Q(0) = 1`,
/// `Q(∞) = 0`.
pub fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 1e-9 {
        return 1.0;
    }
    let mut sum = 0.0f64;
    let mut sign = 1.0f64;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// The asymptotic two-sample p-value of a KS statistic `d` with sample
/// sizes `n` and `m`: `Q(d * sqrt(n m / (n + m)))`.
pub fn asymptotic_p_value(d: f64, n: usize, m: usize) -> f64 {
    debug_assert!(n > 0 && m > 0);
    let (n, m) = (n as f64, m as f64);
    kolmogorov_q(d * (n * m / (n + m)).sqrt())
}

/// Validates that every value in `values` is finite.
pub(crate) fn validate_finite(which: SetKind, values: &[f64]) -> Result<(), MocheError> {
    for (index, &value) in values.iter().enumerate() {
        if !value.is_finite() {
            return Err(MocheError::NonFiniteValue { which, index, value });
        }
    }
    Ok(())
}

/// Computes the two-sample KS statistic `D(R, T)` in
/// `O((n + m) log(n + m))` time.
///
/// # Errors
///
/// Returns an error if either multiset is empty or contains non-finite
/// values.
pub fn ks_statistic(reference: &[f64], test: &[f64]) -> Result<f64, MocheError> {
    if reference.is_empty() {
        return Err(MocheError::EmptyReference);
    }
    if test.is_empty() {
        return Err(MocheError::EmptyTest);
    }
    validate_finite(SetKind::Reference, reference)?;
    validate_finite(SetKind::Test, test)?;

    let mut r: Vec<f64> = reference.to_vec();
    let mut t: Vec<f64> = test.to_vec();
    r.sort_unstable_by(f64::total_cmp);
    t.sort_unstable_by(f64::total_cmp);
    Ok(ks_statistic_sorted(&r, &t))
}

/// Computes the KS statistic for two already-sorted multisets.
///
/// The supremum of `|F_R - F_T|` over the merged support is attained at a
/// data point, so a single merge pass suffices.
pub(crate) fn ks_statistic_sorted(r: &[f64], t: &[f64]) -> f64 {
    let (n, m) = (r.len() as f64, t.len() as f64);
    let mut i = 0usize; // points consumed from r
    let mut j = 0usize; // points consumed from t
    let mut d = 0.0f64;
    while i < r.len() || j < t.len() {
        // Advance over the next distinct value (consume ties from both sides).
        let x = match (r.get(i), t.get(j)) {
            (Some(&a), Some(&b)) => a.min(b),
            (Some(&a), None) => a,
            (None, Some(&b)) => b,
            // lint:allow(panic): the loop condition guarantees one side
            // still has elements
            (None, None) => unreachable!(),
        };
        while i < r.len() && r[i] <= x {
            i += 1;
        }
        while j < t.len() && t[j] <= x {
            j += 1;
        }
        let diff = (i as f64 / n - j as f64 / m).abs();
        if diff > d {
            d = diff;
        }
    }
    d
}

/// Runs the two-sample KS test.
///
/// # Errors
///
/// Propagates validation errors from [`ks_statistic`].
///
/// # Examples
///
/// ```
/// use moche_core::ks::{ks_test, KsConfig};
///
/// let cfg = KsConfig::new(0.05).unwrap();
/// let r: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
/// let t: Vec<f64> = (0..100).map(|i| i as f64 / 100.0 + 0.9).collect();
/// let outcome = ks_test(&r, &t, &cfg).unwrap();
/// assert!(outcome.rejected);
/// ```
pub fn ks_test(reference: &[f64], test: &[f64], cfg: &KsConfig) -> Result<KsOutcome, MocheError> {
    let statistic = ks_statistic(reference, test)?;
    let (n, m) = (reference.len(), test.len());
    Ok(KsOutcome {
        statistic,
        threshold: cfg.threshold(n, m),
        rejected: cfg.rejects(statistic, n, m),
        n,
        m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(alpha: f64) -> KsConfig {
        KsConfig::new(alpha).unwrap()
    }

    #[test]
    fn critical_value_matches_formula() {
        let c = cfg(0.05).critical_value();
        // sqrt(-ln(0.025)/2) = 1.3581015...
        assert!((c - 1.358_101_5).abs() < 1e-6, "c = {c}");
    }

    #[test]
    fn alpha_validation() {
        assert!(KsConfig::new(0.0).is_err());
        assert!(KsConfig::new(1.0).is_err());
        assert!(KsConfig::new(-0.1).is_err());
        assert!(KsConfig::new(f64::NAN).is_err());
        assert!(KsConfig::new(0.05).is_ok());
    }

    #[test]
    fn existence_guarantee_boundary() {
        assert!(cfg(0.05).existence_guaranteed());
        assert!(cfg(0.27).existence_guaranteed());
        assert!(!cfg(0.28).existence_guaranteed());
        assert!((ALPHA_EXISTENCE_GUARANTEE - 0.270_670_566).abs() < 1e-8);
    }

    #[test]
    fn identical_samples_have_zero_statistic() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&xs, &xs).unwrap(), 0.0);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let r = vec![0.0, 1.0, 2.0];
        let t = vec![10.0, 11.0];
        assert_eq!(ks_statistic(&r, &t).unwrap(), 1.0);
    }

    #[test]
    fn statistic_is_symmetric() {
        let r = vec![1.0, 3.0, 3.0, 7.0, 9.0];
        let t = vec![2.0, 3.0, 8.0];
        let a = ks_statistic(&r, &t).unwrap();
        let b = ks_statistic(&t, &r).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn paper_example_3_sets_fail_at_alpha_03() {
        // Example 3/4 of the paper: T = {13, 13, 12, 20}, R = {14 x4, 20 x4};
        // they fail the KS test at significance level 0.3.
        let t = vec![13.0, 13.0, 12.0, 20.0];
        let r = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
        let outcome = ks_test(&r, &t, &cfg(0.3)).unwrap();
        assert!(outcome.rejected, "outcome = {outcome:?}");
        // F_R(13) = 0, F_T(13) = 3/4 -> D = 0.75.
        assert!((outcome.statistic - 0.75).abs() < 1e-12);
    }

    #[test]
    fn handles_ties_across_sets() {
        // All mass at the same points: D must be 0.
        let r = vec![5.0, 5.0, 5.0];
        let t = vec![5.0, 5.0];
        assert_eq!(ks_statistic(&r, &t).unwrap(), 0.0);
    }

    #[test]
    fn statistic_against_naive_evaluation() {
        // Naive: evaluate |F_R - F_T| at every point of both samples.
        let r = vec![0.3, 1.2, 1.2, 2.5, 4.0, 4.0, 4.1, 9.0];
        let t = vec![0.1, 1.2, 2.5, 2.5, 3.0, 8.0];
        let naive = {
            let mut best = 0.0f64;
            for &x in r.iter().chain(t.iter()) {
                let fr = r.iter().filter(|&&v| v <= x).count() as f64 / r.len() as f64;
                let ft = t.iter().filter(|&&v| v <= x).count() as f64 / t.len() as f64;
                best = best.max((fr - ft).abs());
            }
            best
        };
        let fast = ks_statistic(&r, &t).unwrap();
        assert!((fast - naive).abs() < 1e-15, "fast={fast}, naive={naive}");
    }

    #[test]
    fn rejects_empty_inputs() {
        assert_eq!(ks_statistic(&[], &[1.0]).unwrap_err(), MocheError::EmptyReference);
        assert_eq!(ks_statistic(&[1.0], &[]).unwrap_err(), MocheError::EmptyTest);
    }

    #[test]
    fn rejects_non_finite_inputs() {
        let err = ks_statistic(&[1.0, f64::NAN], &[1.0]).unwrap_err();
        match err {
            MocheError::NonFiniteValue { which: SetKind::Reference, index: 1, .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
        assert!(ks_statistic(&[1.0], &[f64::INFINITY]).is_err());
    }

    #[test]
    fn threshold_decreases_with_sample_size() {
        let c = cfg(0.05);
        assert!(c.threshold(10, 10) > c.threshold(100, 100));
        assert!(c.threshold(100, 100) > c.threshold(10_000, 10_000));
    }

    #[test]
    fn single_point_test_set_passes_for_small_alpha() {
        // Proposition 1: for alpha <= 2/e^2 the threshold with m = 1 is >= 1,
        // so any single-point test set passes.
        let c = cfg(0.05);
        assert!(c.threshold(100, 1) >= 1.0);
        let r: Vec<f64> = (0..100).map(f64::from).collect();
        let outcome = ks_test(&r, &[1_000.0], &c).unwrap();
        assert!(outcome.passes());
    }

    #[test]
    fn ks_outcome_passes_is_negation_of_rejected() {
        let r: Vec<f64> = (0..50).map(f64::from).collect();
        let t: Vec<f64> = (0..50).map(|i| f64::from(i) + 0.5).collect();
        let o = ks_test(&r, &t, &cfg(0.05)).unwrap();
        assert_eq!(o.passes(), !o.rejected);
    }

    #[test]
    fn eps_override_changes_borderline_decision() {
        let strict = cfg(0.05).with_eps(0.0);
        let slack = cfg(0.05).with_eps(0.5);
        // statistic minutely above threshold.
        let n = 20;
        let m = 20;
        let d = strict.threshold(n, m) + 1e-12;
        assert!(strict.rejects(d, n, m));
        assert!(!slack.rejects(d, n, m));
    }

    #[test]
    #[should_panic(expected = "eps must be finite")]
    fn with_eps_rejects_negative() {
        let _ = cfg(0.05).with_eps(-1.0);
    }

    #[test]
    fn kolmogorov_q_boundary_values() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(10.0) < 1e-12);
        // Known value: Q(1.0) ≈ 0.26999967.
        assert!((kolmogorov_q(1.0) - 0.269_999_67).abs() < 1e-6);
        // Monotone decreasing.
        let qs: Vec<f64> = (0..50).map(|i| kolmogorov_q(i as f64 * 0.1)).collect();
        assert!(qs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn p_value_inverts_the_threshold() {
        // The critical value c_alpha solves the FIRST term of the series
        // (2 e^{-2 c²} = alpha), so Q(c_alpha) = alpha up to the higher
        // series terms — exact to ~1e-6 for small alpha, ~2e-4 at 0.2.
        for alpha in [0.01, 0.05, 0.1, 0.2] {
            let c = cfg(alpha);
            for (n, m) in [(100, 100), (500, 300), (2175, 3375)] {
                let d = c.threshold(n, m);
                let p = asymptotic_p_value(d, n, m);
                assert!((p - alpha).abs() < 5e-4, "alpha = {alpha}, p = {p}");
            }
        }
        // Tight agreement where higher terms vanish.
        let c = cfg(0.01);
        let p = asymptotic_p_value(c.threshold(1_000, 1_000), 1_000, 1_000);
        assert!((p - 0.01).abs() < 1e-8, "p = {p}");
    }

    #[test]
    fn p_value_decreases_with_statistic() {
        let p1 = asymptotic_p_value(0.1, 200, 200);
        let p2 = asymptotic_p_value(0.2, 200, 200);
        let p3 = asymptotic_p_value(0.4, 200, 200);
        assert!(p1 > p2 && p2 > p3);
    }
}
