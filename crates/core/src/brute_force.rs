//! Brute-force reference algorithms (Section 3.5 of the paper).
//!
//! The brute force enumerates subsets of the test set ordered first by size
//! and then by the lexicographical order of the preference list — a
//! breadth-first traversal of a set-enumeration tree. The first subset whose
//! removal reverses the failed KS test is the most comprehensible
//! counterfactual explanation.
//!
//! These routines are exponential and exist as correctness oracles for
//! MOCHE (used heavily by the test suite) and as the baseline complexity
//! reference; they enforce explicit work limits instead of running forever.

use crate::base_vector::BaseVector;
use crate::cumulative::SubsetCounts;
use crate::error::MocheError;
use crate::ks::KsConfig;
use crate::preference::PreferenceList;

/// Work limits for the brute-force search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruteForceLimits {
    /// Largest subset size to try (inclusive). Defaults to `m - 1`.
    pub max_size: usize,
    /// Maximum number of subsets to KS-test before giving up.
    pub max_checks: usize,
}

impl Default for BruteForceLimits {
    fn default() -> Self {
        Self { max_size: usize::MAX, max_checks: 5_000_000 }
    }
}

/// The explanation found by brute force: original test indices sorted by
/// preference rank, plus the number of subsets checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BruteForceResult {
    /// Selected original test indices, most preferred first.
    pub indices: Vec<usize>,
    /// Number of candidate subsets that were KS-tested.
    pub checks: usize,
}

/// Whether removing the points at `indices` (original test indices) from
/// `T` makes the KS test against `R` pass.
///
/// This is the "conduct the KS test on `R` and `T \ S`" primitive of the
/// brute-force method, implemented over the base vector in `O(q)` after the
/// one-off `O((n+m) log(n+m))` construction.
pub fn removal_reverses(base: &BaseVector, cfg: &KsConfig, indices: &[usize]) -> bool {
    if indices.len() >= base.m() {
        return false; // cannot remove the whole test set
    }
    let counts = SubsetCounts::from_test_indices(base, indices);
    base.outcome_after_removal(counts.as_slice(), cfg).passes()
}

/// Exhaustively decides whether *any* `h`-subset of `T` is qualified, by
/// enumerating all `C(m, h)` index subsets. An oracle for Theorem 1.
///
/// # Errors
///
/// Returns [`MocheError::LimitExceeded`] when `max_checks` subsets were
/// tested without finishing the enumeration.
pub fn exists_qualified_exhaustive(
    base: &BaseVector,
    cfg: &KsConfig,
    h: usize,
    max_checks: usize,
) -> Result<bool, MocheError> {
    let m = base.m();
    if h == 0 || h >= m {
        return Ok(false);
    }
    let mut checks = 0usize;
    let mut found = false;
    let order: Vec<usize> = (0..m).collect();
    for_each_combination(&order, h, &mut |combo| {
        if found {
            return ControlFlow::Stop;
        }
        checks += 1;
        if checks > max_checks {
            return ControlFlow::Abort;
        }
        if removal_reverses(base, cfg, combo) {
            found = true;
            return ControlFlow::Stop;
        }
        ControlFlow::Continue
    });
    if !found && checks > max_checks {
        return Err(MocheError::LimitExceeded { checks });
    }
    Ok(found)
}

/// Finds the most comprehensible explanation by brute force: subsets are
/// enumerated in increasing size, and within each size in the
/// lexicographical order of the preference list, so the first hit is the
/// answer by construction.
///
/// # Errors
///
/// * [`MocheError::TestAlreadyPasses`] if there is nothing to explain.
/// * [`MocheError::LimitExceeded`] when the limits ran out first.
/// * [`MocheError::NoExplanation`] if every allowed size was exhausted.
pub fn brute_force_explain(
    reference: &[f64],
    test: &[f64],
    cfg: &KsConfig,
    preference: &PreferenceList,
    limits: BruteForceLimits,
) -> Result<BruteForceResult, MocheError> {
    let base = BaseVector::build(reference, test)?;
    preference.check_length(base.m())?;
    let before = base.outcome(cfg);
    if before.passes() {
        return Err(MocheError::TestAlreadyPasses {
            statistic: before.statistic,
            threshold: before.threshold,
        });
    }

    // Enumerating combinations of *ranks* in lexicographic rank order and
    // mapping ranks back to indices yields exactly the (size, lex) order of
    // Definition 2.
    let order = preference.as_order();
    let m = base.m();
    let max_size = limits.max_size.min(m.saturating_sub(1));
    let mut checks = 0usize;
    for size in 1..=max_size {
        let mut answer: Option<Vec<usize>> = None;
        let mut aborted = false;
        for_each_combination(order, size, &mut |combo| {
            checks += 1;
            if checks > limits.max_checks {
                aborted = true;
                return ControlFlow::Abort;
            }
            if removal_reverses(&base, cfg, combo) {
                answer = Some(combo.to_vec());
                return ControlFlow::Stop;
            }
            ControlFlow::Continue
        });
        if let Some(indices) = answer {
            return Ok(BruteForceResult { indices, checks });
        }
        if aborted {
            return Err(MocheError::LimitExceeded { checks });
        }
    }
    Err(MocheError::NoExplanation { alpha: cfg.alpha() })
}

/// Flow control for the combination visitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ControlFlow {
    Continue,
    Stop,
    Abort,
}

/// Visits all `size`-combinations of `items` in lexicographic order of
/// positions, passing each combination (as the selected items, in order) to
/// `f`. Iterative odometer implementation; no recursion, one scratch buffer.
fn for_each_combination(items: &[usize], size: usize, f: &mut impl FnMut(&[usize]) -> ControlFlow) {
    let n = items.len();
    if size == 0 || size > n {
        return;
    }
    let mut pos: Vec<usize> = (0..size).collect();
    let mut combo: Vec<usize> = pos.iter().map(|&p| items[p]).collect();
    loop {
        match f(&combo) {
            ControlFlow::Continue => {}
            ControlFlow::Stop | ControlFlow::Abort => return,
        }
        // Advance the odometer.
        let mut i = size;
        loop {
            if i == 0 {
                return; // done
            }
            i -= 1;
            if pos[i] != i + n - size {
                break;
            }
            if i == 0 {
                return; // last combination visited
            }
        }
        pos[i] += 1;
        for j in i + 1..size {
            pos[j] = pos[j - 1] + 1;
        }
        for j in i..size {
            combo[j] = items[pos[j]];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_setup() -> (Vec<f64>, Vec<f64>, KsConfig) {
        (
            vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0],
            vec![13.0, 13.0, 12.0, 20.0],
            KsConfig::new(0.3).unwrap(),
        )
    }

    #[test]
    fn combination_enumeration_is_lexicographic() {
        let items = vec![10, 20, 30, 40];
        let mut seen = Vec::new();
        for_each_combination(&items, 2, &mut |c| {
            seen.push(c.to_vec());
            ControlFlow::Continue
        });
        assert_eq!(
            seen,
            vec![
                vec![10, 20],
                vec![10, 30],
                vec![10, 40],
                vec![20, 30],
                vec![20, 40],
                vec![30, 40],
            ]
        );
    }

    #[test]
    fn combination_full_and_single() {
        let items = vec![1, 2, 3];
        let mut count = 0;
        for_each_combination(&items, 3, &mut |c| {
            assert_eq!(c, &[1, 2, 3]);
            count += 1;
            ControlFlow::Continue
        });
        assert_eq!(count, 1);
        count = 0;
        for_each_combination(&items, 1, &mut |_| {
            count += 1;
            ControlFlow::Continue
        });
        assert_eq!(count, 3);
        for_each_combination(&items, 0, &mut |_| panic!("no combos of size 0"));
        for_each_combination(&items, 4, &mut |_| panic!("no combos of size 4"));
    }

    #[test]
    fn paper_example_brute_force() {
        let (r, t, cfg) = paper_setup();
        // L = [t4, t3, t2, t1] = indices [3, 2, 1, 0].
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let res = brute_force_explain(&r, &t, &cfg, &pref, BruteForceLimits::default()).unwrap();
        assert_eq!(res.indices, vec![2, 1], "Example 6's explanation {{t3, t2}}");
    }

    #[test]
    fn exhaustive_existence_matches_sizes() {
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        assert!(!exists_qualified_exhaustive(&base, &cfg, 1, 10_000).unwrap());
        assert!(exists_qualified_exhaustive(&base, &cfg, 2, 10_000).unwrap());
        assert!(!exists_qualified_exhaustive(&base, &cfg, 0, 10_000).unwrap());
        assert!(!exists_qualified_exhaustive(&base, &cfg, 4, 10_000).unwrap());
    }

    #[test]
    fn removal_reverses_guards_full_removal() {
        let (r, t, cfg) = paper_setup();
        let base = BaseVector::build(&r, &t).unwrap();
        assert!(!removal_reverses(&base, &cfg, &[0, 1, 2, 3]));
    }

    #[test]
    fn passing_test_yields_error() {
        let cfg = KsConfig::new(0.05).unwrap();
        let r: Vec<f64> = (0..20).map(f64::from).collect();
        let pref = PreferenceList::identity(20);
        match brute_force_explain(&r, &r, &cfg, &pref, BruteForceLimits::default()) {
            Err(MocheError::TestAlreadyPasses { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn limit_exceeded_is_reported() {
        let (r, t, cfg) = paper_setup();
        let pref = PreferenceList::identity(4);
        let limits = BruteForceLimits { max_size: 3, max_checks: 2 };
        match brute_force_explain(&r, &t, &cfg, &pref, limits) {
            Err(MocheError::LimitExceeded { checks }) => assert!(checks > 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn preference_length_mismatch_detected() {
        let (r, t, cfg) = paper_setup();
        let pref = PreferenceList::identity(3);
        match brute_force_explain(&r, &t, &cfg, &pref, BruteForceLimits::default()) {
            Err(MocheError::PreferenceLengthMismatch { expected: 4, actual: 3 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn brute_force_respects_preference_order() {
        let (r, t, cfg) = paper_setup();
        // With identity preference [t1, t2, t3, t4], the lex-smallest
        // explanation of size 2 that reverses the test should prefer low
        // indices: candidates in order are {0,1}, {0,2}, ...
        let pref = PreferenceList::identity(4);
        let res = brute_force_explain(&r, &t, &cfg, &pref, BruteForceLimits::default()).unwrap();
        assert_eq!(res.indices.len(), 2);
        // {t1, t2} = {13, 13} reverses (Example 3 checks S = {13, 13}).
        assert_eq!(res.indices, vec![0, 1]);
    }
}
