//! Cumulative vectors of subsets of the test set (Definition 3 of the
//! paper) and their multiplicity-count dual.
//!
//! A subset `S ⊆ T` is represented in two interchangeable ways:
//!
//! * a [`CumulativeVector`] `C_S` with `C_S[i] = |{x in S : x <= x_i}|`
//!   (the paper's representation), and
//! * [`SubsetCounts`] `d` with `d[i] = C_S[i] - C_S[i-1]`, the multiplicity
//!   of `x_i` in `S`, which is the convenient form for the incremental
//!   Phase-2 construction.

use crate::base_vector::BaseVector;

/// Per-value multiplicities of a subset `S ⊆ T`, indexed by base-vector
/// position (`1..=q`; index `0` is an unused sentinel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsetCounts {
    counts: Vec<u64>,
    total: u64,
}

impl SubsetCounts {
    /// The empty subset over a base vector with `q` distinct values.
    pub fn empty(q: usize) -> Self {
        Self { counts: vec![0; q + 1], total: 0 }
    }

    /// Builds counts from original test-point indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or listed more times than the test
    /// set contains copies of its value.
    pub fn from_test_indices(base: &BaseVector, indices: &[usize]) -> Self {
        let mut s = Self::empty(0);
        s.refill_from_test_indices(base, indices);
        s
    }

    /// Resets to the empty subset over a base vector with `q` distinct
    /// values, reusing the existing storage (no allocation once the buffer
    /// has grown to the working size).
    pub fn reset(&mut self, q: usize) {
        self.counts.clear();
        self.counts.resize(q + 1, 0);
        self.total = 0;
    }

    /// [`from_test_indices`](Self::from_test_indices) rebuilding `self` in
    /// place — the recycled-scratch path the
    /// [`crate::engine::ExplainEngine`] runs per explanation.
    ///
    /// # Panics
    ///
    /// As for [`from_test_indices`](Self::from_test_indices).
    pub fn refill_from_test_indices(&mut self, base: &BaseVector, indices: &[usize]) {
        self.reset(base.q());
        for &orig in indices {
            assert!(orig < base.m(), "test index {orig} out of range");
            self.add(base.test_point_index(orig));
        }
        for i in 1..=base.q() {
            assert!(
                self.counts[i] <= base.t_mult(i),
                "subset uses value x_{i} more often than the test set contains it"
            );
        }
    }

    /// Adds one copy of the value at base index `i` (1-based).
    #[inline]
    pub fn add(&mut self, i: usize) {
        self.counts[i] += 1;
        self.total += 1;
    }

    /// Removes one copy of the value at base index `i` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if the subset contains no copy at `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(self.counts[i] > 0, "no copy of x_{i} to remove");
        self.counts[i] -= 1;
        self.total -= 1;
    }

    /// Multiplicity of `x_i` in the subset (`d[i]`), `1 <= i <= q`.
    #[inline]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total size `|S|`.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `q` of the underlying base vector.
    #[inline]
    pub fn q(&self) -> usize {
        self.counts.len() - 1
    }

    /// The raw counts slice (length `q + 1`, index 0 is the sentinel).
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.counts
    }

    /// Converts to the cumulative-vector representation.
    pub fn cumulative(&self) -> CumulativeVector {
        let mut c = Vec::with_capacity(self.counts.len());
        c.push(0u64);
        let mut acc = 0u64;
        for &d in &self.counts[1..] {
            acc += d;
            c.push(acc);
        }
        CumulativeVector { c }
    }
}

/// A cumulative vector `C_S` (Definition 3): `C_S[0] = 0` and `C_S[i]` is
/// the number of points of `S` that are `<= x_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CumulativeVector {
    c: Vec<u64>,
}

impl CumulativeVector {
    /// Wraps a raw cumulative array (length `q + 1`, `c[0] == 0`,
    /// non-decreasing).
    ///
    /// # Panics
    ///
    /// Panics if the invariants are violated.
    pub fn new(c: Vec<u64>) -> Self {
        assert!(!c.is_empty() && c[0] == 0, "cumulative vector must start at 0");
        assert!(c.windows(2).all(|w| w[0] <= w[1]), "cumulative vector must be non-decreasing");
        Self { c }
    }

    /// `C_S[i]` for `0 <= i <= q`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.c[i]
    }

    /// `q` of the underlying base vector.
    #[inline]
    pub fn q(&self) -> usize {
        self.c.len() - 1
    }

    /// Size of the represented subset, `C_S[q]`.
    #[inline]
    pub fn subset_size(&self) -> u64 {
        // lint:allow(panic): `c` always holds q+1 >= 1 entries by construction
        *self.c.last().unwrap()
    }

    /// Converts back to per-value multiplicities.
    pub fn counts(&self) -> SubsetCounts {
        let mut counts = Vec::with_capacity(self.c.len());
        counts.push(0u64);
        for w in self.c.windows(2) {
            counts.push(w[1] - w[0]);
        }
        SubsetCounts { counts, total: self.subset_size() }
    }

    /// Whether this vector describes a genuine subset of the test set of
    /// `base` (i.e. multiplicities never exceed the test set's).
    pub fn is_subset_of_test(&self, base: &BaseVector) -> bool {
        debug_assert_eq!(self.q(), base.q());
        (1..=self.q()).all(|i| self.c[i] - self.c[i - 1] <= base.t_mult(i))
    }

    /// Materializes a concrete set of original test indices whose cumulative
    /// vector is `self`, choosing, for each value, the occurrences with the
    /// smallest original indices.
    ///
    /// Returns `None` if the vector is not a subset of the test set.
    pub fn materialize_indices(&self, base: &BaseVector, test_len: usize) -> Option<Vec<usize>> {
        if !self.is_subset_of_test(base) {
            return None;
        }
        let counts = self.counts();
        let mut need: Vec<u64> = counts.counts.clone();
        let mut out = Vec::with_capacity(self.subset_size() as usize);
        for orig in 0..test_len {
            let i = base.test_point_index(orig);
            if need[i] > 0 {
                need[i] -= 1;
                out.push(orig);
            }
        }
        debug_assert!(need[1..].iter().all(|&x| x == 0));
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_base() -> BaseVector {
        let r = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
        let t = vec![13.0, 13.0, 12.0, 20.0];
        BaseVector::build(&r, &t).unwrap()
    }

    #[test]
    fn paper_example_cumulative_vector() {
        // Example 3: S = {13, 13} has C_S = <0, 0, 2, 2, 2>.
        let base = paper_base();
        // 13s are original indices 0 and 1.
        let s = SubsetCounts::from_test_indices(&base, &[0, 1]);
        let c = s.cumulative();
        assert_eq!((0..=4).map(|i| c.get(i)).collect::<Vec<_>>(), vec![0, 0, 2, 2, 2]);
        assert_eq!(c.subset_size(), 2);
    }

    #[test]
    fn counts_cumulative_roundtrip() {
        let base = paper_base();
        let s = SubsetCounts::from_test_indices(&base, &[2, 3]);
        let c = s.cumulative();
        assert_eq!(c.counts(), s);
    }

    #[test]
    fn add_remove_inverse() {
        let mut s = SubsetCounts::empty(5);
        s.add(3);
        s.add(3);
        s.add(5);
        assert_eq!(s.total(), 3);
        s.remove(3);
        assert_eq!(s.count(3), 1);
        assert_eq!(s.total(), 2);
    }

    #[test]
    #[should_panic(expected = "no copy")]
    fn remove_from_empty_panics() {
        let mut s = SubsetCounts::empty(3);
        s.remove(1);
    }

    #[test]
    #[should_panic(expected = "more often")]
    fn from_test_indices_rejects_overuse() {
        let base = paper_base();
        // Index 2 is the single 12; using it twice is impossible for a set of
        // indices, but simulate by passing it twice.
        let _ = SubsetCounts::from_test_indices(&base, &[2, 2]);
    }

    #[test]
    fn cumulative_vector_validation() {
        assert!(std::panic::catch_unwind(|| CumulativeVector::new(vec![1, 2])).is_err());
        assert!(std::panic::catch_unwind(|| CumulativeVector::new(vec![0, 2, 1])).is_err());
        let c = CumulativeVector::new(vec![0, 1, 1, 3]);
        assert_eq!(c.subset_size(), 3);
        assert_eq!(c.q(), 3);
    }

    #[test]
    fn is_subset_of_test_detects_violation() {
        let base = paper_base(); // t multiplicities: [1, 2, 0, 1]
        let ok = CumulativeVector::new(vec![0, 1, 3, 3, 4]);
        assert!(ok.is_subset_of_test(&base));
        let bad = CumulativeVector::new(vec![0, 2, 2, 2, 2]); // two copies of 12
        assert!(!bad.is_subset_of_test(&base));
        let bad2 = CumulativeVector::new(vec![0, 0, 0, 1, 1]); // a 14, not in T
        assert!(!bad2.is_subset_of_test(&base));
    }

    #[test]
    fn materialize_prefers_smallest_indices() {
        let base = paper_base();
        // One copy of 13 -> should pick original index 0 (first 13).
        let c = CumulativeVector::new(vec![0, 0, 1, 1, 1]);
        let idxs = c.materialize_indices(&base, 4).unwrap();
        assert_eq!(idxs, vec![0]);
    }

    #[test]
    fn materialize_rejects_non_subset() {
        let base = paper_base();
        let bad = CumulativeVector::new(vec![0, 0, 0, 2, 2]);
        assert!(bad.materialize_indices(&base, 4).is_none());
    }

    #[test]
    fn empty_subset_is_valid() {
        let base = paper_base();
        let s = SubsetCounts::empty(base.q());
        let c = s.cumulative();
        assert_eq!(c.subset_size(), 0);
        assert!(c.is_subset_of_test(&base));
        assert_eq!(c.materialize_indices(&base, 4).unwrap(), Vec::<usize>::new());
    }
}
