//! Bounded-memory streaming batch explanation: explain windows as they
//! arrive instead of buffering them all up front.
//!
//! [`crate::batch::BatchExplainer`] wants every window in memory before it
//! starts — fine for a few thousand windows, wrong for the monitor
//! deployment where windows arrive indefinitely. [`StreamingBatchExplainer`]
//! accepts windows from any iterator (a lazily-parsed file, a socket, a
//! generator) and pipelines them through a pool of workers with **bounded
//! memory**:
//!
//! * a feeder thread pulls windows from the iterator into a
//!   [`sync_channel`](std::sync::mpsc::sync_channel) whose capacity is the
//!   configured [`buffer`](StreamingBatchExplainer::buffer) — the iterator
//!   is never driven more than `buffer` windows ahead of the workers;
//! * each worker owns one [`ExplainEngine`] (scratch buffers and the
//!   identity preference are recycled across windows) and splices every
//!   window into the shared [`ReferenceIndex`] — the amortized
//!   [`crate::BaseVector::build_with_index`] path;
//! * completed windows pass through a small reorder buffer so results are
//!   delivered to the caller **in arrival order**, exactly matching the
//!   sequential output. The reorder buffer is itself bounded (a window can
//!   only wait on `buffer + threads` predecessors), so total residency is
//!   `O((buffer + threads) · m)` regardless of stream length.
//!
//! The [`StreamMode::SizeOnly`] mode runs Phase 1 only and reports just the
//! explanation size `k` per window — "how bad is the drift" at a fraction
//! of the cost, the common monitoring question.

pub use crate::batch::ScoreFn;
use crate::engine::ExplainEngine;
use crate::error::MocheError;
use crate::ks::KsConfig;
use crate::moche::Explanation;
use crate::phase1::SizeSearch;
use crate::preference::PreferenceList;
use crate::ref_index::ReferenceIndex;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Mutex;

/// What the streaming engine computes per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamMode {
    /// Full MOCHE: Phase 1 + Phase 2, yielding an [`Explanation`].
    #[default]
    Explain,
    /// Phase 1 only, yielding the explanation size ([`SizeSearch`]) —
    /// Phase 2 is skipped entirely.
    SizeOnly,
}

/// The successful payload of one streamed window.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Explained carries the full Explanation by design
pub enum WindowReport {
    /// The full explanation ([`StreamMode::Explain`]).
    Explained(Explanation),
    /// Phase-1 size only ([`StreamMode::SizeOnly`]).
    Size(SizeSearch),
}

/// One delivered window outcome. Results arrive in window (arrival) order.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResult {
    /// 0-based arrival index of the window.
    pub window: usize,
    /// The window's outcome; windows that pass the KS test report
    /// [`MocheError::TestAlreadyPasses`], like the batch API.
    pub result: Result<WindowReport, MocheError>,
}

/// Aggregate statistics of one streaming run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamSummary {
    /// Total windows consumed from the iterator.
    pub windows: usize,
    /// Windows that produced an explanation (or a size, in
    /// [`StreamMode::SizeOnly`]).
    pub explained: usize,
    /// Windows whose KS test passed (nothing to explain).
    pub passing: usize,
    /// Windows that failed with any other error.
    pub errors: usize,
    /// Worker threads actually used (1 means the run was sequential).
    pub threads: usize,
}

/// A bounded-memory streaming explainer over an indexed reference.
///
/// # Examples
///
/// ```
/// use moche_core::{ReferenceIndex, StreamingBatchExplainer, WindowReport};
///
/// let reference: Vec<f64> = (0..64).map(|i| f64::from(i % 8)).collect();
/// let index = ReferenceIndex::new(&reference).unwrap();
/// let windows = (0..100u32).map(|w| {
///     (0..32).map(|i| f64::from((i + w) % 8) + 4.0).collect::<Vec<f64>>()
/// });
///
/// let streamer = StreamingBatchExplainer::new(0.05).unwrap().buffer(4);
/// let mut sizes = Vec::new();
/// let summary = streamer.explain_stream(&index, windows, None, |r| {
///     if let Ok(WindowReport::Explained(e)) = r.result {
///         sizes.push(e.size());
///     }
/// });
/// assert_eq!(summary.windows, 100);
/// assert_eq!(summary.explained, sizes.len());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StreamingBatchExplainer {
    cfg: KsConfig,
    threads: usize,
    buffer: usize,
    mode: StreamMode,
}

impl StreamingBatchExplainer {
    /// Creates a streaming explainer for significance level `alpha`, using
    /// all available cores and an automatic buffer bound.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        Ok(Self::with_config(KsConfig::new(alpha)?))
    }

    /// Creates a streaming explainer from an existing [`KsConfig`].
    pub fn with_config(cfg: KsConfig) -> Self {
        Self { cfg, threads: 0, buffer: 0, mode: StreamMode::default() }
    }

    /// Caps the worker-thread count. `0` (the default) means "one per
    /// available core".
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Bounds the number of windows buffered ahead of the workers. `0`
    /// (the default) picks `2 × threads`, minimum 4. Total memory held by a
    /// run is `O((buffer + threads) · window size)`.
    #[must_use]
    pub fn buffer(mut self, buffer: usize) -> Self {
        self.buffer = buffer;
        self
    }

    /// Selects what to compute per window (full explanations vs Phase-1
    /// sizes only).
    #[must_use]
    pub fn mode(mut self, mode: StreamMode) -> Self {
        self.mode = mode;
        self
    }

    /// The KS configuration in use.
    #[inline]
    pub fn config(&self) -> &KsConfig {
        &self.cfg
    }

    /// The number of worker threads a run would actually use (the
    /// configured cap, or the core count for `0`). `1` means runs will be
    /// sequential.
    pub fn effective_threads(&self) -> usize {
        self.worker_count()
    }

    fn worker_count(&self) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        if self.threads == 0 {
            hw
        } else {
            self.threads.max(1)
        }
    }

    fn buffer_bound(&self, workers: usize) -> usize {
        if self.buffer == 0 {
            (2 * workers).max(4)
        } else {
            self.buffer.max(1)
        }
    }

    /// Streams every window through the worker pool, calling `on_result`
    /// once per window **in arrival order**. `score`, when given, derives
    /// each window's preference inside the workers
    /// ([`StreamMode::SizeOnly`] ignores it — Phase 1 needs no
    /// preference); `None` uses the identity order.
    ///
    /// Results are byte-identical to [`crate::batch::BatchExplainer`] over
    /// the same windows (enforced by `tests/proptest_indexed.rs`).
    pub fn explain_stream<I, F>(
        &self,
        reference: &ReferenceIndex,
        windows: I,
        score: Option<ScoreFn<'_>>,
        on_result: F,
    ) -> StreamSummary
    where
        I: IntoIterator<Item = Vec<f64>>,
        I::IntoIter: Send,
        F: FnMut(StreamResult),
    {
        let workers = self.worker_count();
        if workers <= 1 {
            self.run_sequential(reference, windows, score, on_result)
        } else {
            self.run_parallel(reference, windows, score, on_result, workers)
        }
    }

    /// One window's computation, on a worker-owned engine. `ident` caches
    /// the identity preference across same-length windows so steady-state
    /// streams build it once.
    fn process(
        &self,
        engine: &mut ExplainEngine,
        ident: &mut PreferenceList,
        reference: &ReferenceIndex,
        score: Option<ScoreFn<'_>>,
        window_id: usize,
        window: &[f64],
    ) -> Result<WindowReport, MocheError> {
        match self.mode {
            StreamMode::SizeOnly => {
                engine.size_with_index(reference, window).map(WindowReport::Size)
            }
            StreamMode::Explain => {
                let owned;
                let pref = match score {
                    Some(score) => {
                        owned = score(window_id, window)?;
                        &owned
                    }
                    None => {
                        if ident.len() != window.len() {
                            *ident = PreferenceList::identity(window.len());
                        }
                        &*ident
                    }
                };
                engine.explain_with_index(reference, window, pref).map(WindowReport::Explained)
            }
        }
    }

    fn run_sequential<I, F>(
        &self,
        reference: &ReferenceIndex,
        windows: I,
        score: Option<ScoreFn<'_>>,
        mut on_result: F,
    ) -> StreamSummary
    where
        I: IntoIterator<Item = Vec<f64>>,
        F: FnMut(StreamResult),
    {
        let mut summary = StreamSummary { threads: 1, ..StreamSummary::default() };
        let mut engine = ExplainEngine::with_config(self.cfg);
        let mut ident = PreferenceList::identity(0);
        for (window_id, window) in windows.into_iter().enumerate() {
            let result =
                self.process(&mut engine, &mut ident, reference, score, window_id, &window);
            summary.tally(&result);
            on_result(StreamResult { window: window_id, result });
        }
        summary
    }

    fn run_parallel<I, F>(
        &self,
        reference: &ReferenceIndex,
        windows: I,
        score: Option<ScoreFn<'_>>,
        mut on_result: F,
        workers: usize,
    ) -> StreamSummary
    where
        I: IntoIterator<Item = Vec<f64>>,
        I::IntoIter: Send,
        F: FnMut(StreamResult),
    {
        let buffer = self.buffer_bound(workers);
        let iter = windows.into_iter();
        let mut summary = StreamSummary { threads: workers, ..StreamSummary::default() };

        // Feeder -> bounded job channel -> workers -> bounded result
        // channel -> in-order delivery on this thread. Both channels are
        // bounded, so the stream can run forever in constant memory.
        let (job_tx, job_rx) = mpsc::sync_channel::<(usize, Vec<f64>)>(buffer);
        let job_rx = Mutex::new(job_rx);
        let (result_tx, result_rx) = mpsc::sync_channel::<StreamResult>(buffer.max(workers));

        std::thread::scope(|scope| {
            scope.spawn(move || {
                for job in iter.enumerate() {
                    if job_tx.send(job).is_err() {
                        break; // receivers are gone; nothing left to feed
                    }
                }
            });
            for _ in 0..workers {
                let result_tx = result_tx.clone();
                let job_rx = &job_rx;
                scope.spawn(move || {
                    let mut engine = ExplainEngine::with_config(self.cfg);
                    let mut ident = PreferenceList::identity(0);
                    loop {
                        let job = job_rx.lock().expect("job receiver poisoned").recv();
                        let Ok((window_id, window)) = job else { break };
                        let result = self.process(
                            &mut engine,
                            &mut ident,
                            reference,
                            score,
                            window_id,
                            &window,
                        );
                        if result_tx.send(StreamResult { window: window_id, result }).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(result_tx); // the workers hold the remaining clones

            // Reorder completed windows into arrival order. A window can
            // only wait on predecessors still in flight, so `pending` is
            // bounded by the channel capacities.
            let mut pending: BTreeMap<usize, StreamResult> = BTreeMap::new();
            let mut next = 0usize;
            for result in result_rx.iter() {
                pending.insert(result.window, result);
                while let Some(ready) = pending.remove(&next) {
                    summary.tally(&ready.result);
                    on_result(ready);
                    next += 1;
                }
            }
            debug_assert!(pending.is_empty(), "every window must be delivered");
        });
        summary
    }
}

impl StreamSummary {
    fn tally(&mut self, result: &Result<WindowReport, MocheError>) {
        self.windows += 1;
        match result {
            Ok(_) => self.explained += 1,
            Err(MocheError::TestAlreadyPasses { .. }) => self.passing += 1,
            Err(_) => self.errors += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_vector::SortedReference;
    use crate::batch::BatchExplainer;

    fn setup(count: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
        let reference: Vec<f64> = (0..200u32).map(|i| f64::from(i % 10)).collect();
        let windows: Vec<Vec<f64>> = (0..count)
            .map(|w| (0..50).map(|i| f64::from(((i + w) % 7) as u32) + 5.0).collect())
            .collect();
        (reference, windows)
    }

    fn collect_stream(
        streamer: &StreamingBatchExplainer,
        index: &ReferenceIndex,
        windows: &[Vec<f64>],
    ) -> (Vec<StreamResult>, StreamSummary) {
        let mut out = Vec::new();
        let summary = streamer.explain_stream(index, windows.to_vec(), None, |r| out.push(r));
        (out, summary)
    }

    #[test]
    fn stream_matches_batch_and_arrives_in_order() {
        let (r, windows) = setup(24);
        let index = ReferenceIndex::new(&r).unwrap();
        let shared = SortedReference::new(&r).unwrap();
        let batch = BatchExplainer::new(0.05).unwrap().threads(4);
        let expected = batch.explain_windows(&shared, &windows, None);
        for threads in [1, 4] {
            let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(threads).buffer(3);
            let (results, summary) = collect_stream(&streamer, &index, &windows);
            assert_eq!(summary.windows, windows.len());
            assert_eq!(summary.threads, threads);
            assert_eq!(results.len(), windows.len());
            for (i, (res, exp)) in results.iter().zip(&expected).enumerate() {
                assert_eq!(res.window, i, "results must arrive in window order");
                match (&res.result, exp) {
                    (Ok(WindowReport::Explained(a)), Ok(b)) => assert_eq!(a, b),
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    other => panic!("divergence at window {i}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn size_only_matches_full_phase1() {
        let (r, windows) = setup(10);
        let index = ReferenceIndex::new(&r).unwrap();
        let full = StreamingBatchExplainer::new(0.05).unwrap().threads(2).buffer(2);
        let sized = full.mode(StreamMode::SizeOnly);
        let (full_results, _) = collect_stream(&full, &index, &windows);
        let (size_results, summary) = collect_stream(&sized, &index, &windows);
        assert_eq!(summary.explained, windows.len());
        for (f, s) in full_results.iter().zip(&size_results) {
            match (&f.result, &s.result) {
                (Ok(WindowReport::Explained(e)), Ok(WindowReport::Size(k))) => {
                    assert_eq!(&e.phase1, k);
                }
                other => panic!("divergence: {other:?}"),
            }
        }
    }

    #[test]
    fn passing_and_erroring_windows_are_tallied() {
        let (r, mut windows) = setup(4);
        windows.push(r.clone()); // passes the KS test
        windows.push(vec![]); // EmptyTest error
        let index = ReferenceIndex::new(&r).unwrap();
        let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(2).buffer(2);
        let (results, summary) = collect_stream(&streamer, &index, &windows);
        assert_eq!(summary.windows, 6);
        assert_eq!(summary.explained, 4);
        assert_eq!(summary.passing, 1);
        assert_eq!(summary.errors, 1);
        assert!(matches!(results[4].result, Err(MocheError::TestAlreadyPasses { .. })));
        assert!(matches!(results[5].result, Err(MocheError::EmptyTest)));
    }

    #[test]
    fn score_callback_runs_in_workers() {
        let (r, windows) = setup(8);
        let index = ReferenceIndex::new(&r).unwrap();
        let shared = SortedReference::new(&r).unwrap();
        let prefs: Vec<PreferenceList> =
            windows.iter().map(|w| PreferenceList::reversed(w.len())).collect();
        let expected =
            BatchExplainer::new(0.05).unwrap().explain_windows(&shared, &windows, Some(&prefs));
        let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(3).buffer(2);
        let mut results = Vec::new();
        let score: ScoreFn<'_> = &|_, w| Ok(PreferenceList::reversed(w.len()));
        streamer.explain_stream(&index, windows.clone(), Some(score), |r| results.push(r));
        for (res, exp) in results.iter().zip(&expected) {
            match (&res.result, exp) {
                (Ok(WindowReport::Explained(a)), Ok(b)) => assert_eq!(a, b),
                other => panic!("divergence: {other:?}"),
            }
        }
    }

    #[test]
    fn empty_stream_is_fine() {
        let index = ReferenceIndex::new(&[1.0, 2.0]).unwrap();
        let streamer = StreamingBatchExplainer::new(0.05).unwrap();
        let summary = streamer.explain_stream(&index, Vec::<Vec<f64>>::new(), None, |_| {
            panic!("no results expected")
        });
        assert_eq!(summary.windows, 0);
    }
}
