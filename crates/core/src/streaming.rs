//! Bounded-memory streaming batch explanation: explain windows as they
//! arrive instead of buffering them all up front.
//!
//! [`crate::batch::BatchExplainer`] wants every window in memory before it
//! starts — fine for a few thousand windows, wrong for the monitor
//! deployment where windows arrive indefinitely. [`StreamingBatchExplainer`]
//! accepts windows from any iterator (a lazily-parsed file, a socket, a
//! generator) and pipelines them through a pool of workers with **bounded
//! memory**:
//!
//! * a feeder thread pulls windows from the source into a
//!   [`sync_channel`](std::sync::mpsc::sync_channel) whose capacity is the
//!   configured [`buffer`](StreamingBatchExplainer::buffer) — the source
//!   is never driven more than `buffer` windows ahead of the workers;
//! * each worker owns one [`ExplainEngine`] (scratch buffers and the
//!   identity preference are recycled across windows) and splices every
//!   window into the shared [`ReferenceIndex`] — the amortized
//!   [`crate::BaseVector::build_with_index`] path;
//! * completed windows pass through a preallocated reorder ring so results
//!   are delivered to the caller **in arrival order**, exactly matching the
//!   sequential output. The ring is bounded (a window can only wait on
//!   in-flight predecessors), so total residency is
//!   `O((buffer + threads) · m)` regardless of stream length.
//!
//! On top of the bounded *residency*, the [`explain_source`] entry point
//! makes the steady state allocation-free end to end by recycling every
//! per-window buffer:
//!
//! * windows are *filled* into recycled `Vec<f64>` buffers by a
//!   [`WindowSource`] instead of being allocated by the producer — drained
//!   buffers flow back to the feeder through a bounded return ring;
//! * explanation outputs are written into [`ExplanationArena`] storage
//!   (each worker owns one arena; a fixed per-worker slab), and once the
//!   caller's callback has consumed a result the output buffers flow back
//!   to the workers through a second bounded return ring.
//!
//! After warm-up a single-threaded [`explain_source`] run performs **zero
//! heap allocations per window** (gated by the `BENCH_core.json` perf
//! suite and the `alloc_count.rs` tests). The parallel path's return rings
//! are bounded `sync_channel`s whose slot arrays are preallocated, so its
//! steady state is allocation-free too; scoring callbacks can join via
//! [`explain_source_scored`](StreamingBatchExplainer::explain_source_scored).
//!
//! The [`StreamMode::SizeOnly`] mode runs Phase 1 only and reports just the
//! explanation size `k` per window — "how bad is the drift" at a fraction
//! of the cost, the common monitoring question.
//!
//! [`explain_source`]: StreamingBatchExplainer::explain_source

use crate::arena::ExplanationArena;
pub use crate::batch::{ScoreFn, ScoreIntoFn};
use crate::engine::ExplainEngine;
use crate::error::MocheError;
use crate::ks::KsConfig;
use crate::moche::Explanation;
use crate::phase1::SizeSearch;
use crate::preference::PreferenceList;
use crate::ref_index::ReferenceIndex;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};

/// What the streaming engine computes per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamMode {
    /// Full MOCHE: Phase 1 + Phase 2, yielding an [`Explanation`].
    #[default]
    Explain,
    /// Phase 1 only, yielding the explanation size ([`SizeSearch`]) —
    /// Phase 2 is skipped entirely.
    SizeOnly,
}

/// A producer of test windows that fills caller-recycled buffers.
///
/// Where an `Iterator<Item = Vec<f64>>` must allocate every window it
/// yields, a `WindowSource` is handed a recycled buffer to overwrite — the
/// producer side of the constant-memory streaming loop (see
/// [`StreamingBatchExplainer::explain_source`]). Any
/// `FnMut(&mut Vec<f64>) -> bool` closure is a `WindowSource`.
pub trait WindowSource {
    /// Overwrites `window` with the next window and returns `true`, or
    /// returns `false` at the end of the stream (leaving `window` in an
    /// unspecified state).
    fn fill(&mut self, window: &mut Vec<f64>) -> bool;
}

impl<F: FnMut(&mut Vec<f64>) -> bool> WindowSource for F {
    fn fill(&mut self, window: &mut Vec<f64>) -> bool {
        self(window)
    }
}

/// Adapts an iterator of owned windows to the fill-style interface (the
/// recycled buffer is simply replaced, so this path allocates exactly what
/// the iterator does).
struct IterSource<I>(I);

impl<I: Iterator<Item = Vec<f64>>> WindowSource for IterSource<I> {
    fn fill(&mut self, window: &mut Vec<f64>) -> bool {
        match self.0.next() {
            Some(w) => {
                *window = w;
                true
            }
            None => false,
        }
    }
}

/// The successful payload of one streamed window.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Explained carries the full Explanation by design
pub enum WindowReport {
    /// The full explanation ([`StreamMode::Explain`]).
    Explained(Explanation),
    /// Phase-1 size only ([`StreamMode::SizeOnly`]).
    Size(SizeSearch),
}

/// One delivered window outcome. Results arrive in window (arrival) order.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResult {
    /// 0-based arrival index of the window.
    pub window: usize,
    /// The window's outcome; windows that pass the KS test report
    /// [`MocheError::TestAlreadyPasses`], like the batch API.
    pub result: Result<WindowReport, MocheError>,
}

/// Aggregate statistics of one streaming run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamSummary {
    /// Total windows consumed from the source.
    pub windows: usize,
    /// Windows that produced an explanation (or a size, in
    /// [`StreamMode::SizeOnly`]).
    pub explained: usize,
    /// Windows whose KS test passed (nothing to explain).
    pub passing: usize,
    /// Windows that failed with any other error.
    pub errors: usize,
    /// Windows whose computation panicked (caught and reported as
    /// [`MocheError::WorkerPanicked`]; also counted in
    /// [`errors`](Self::errors)). The panic was isolated to that window —
    /// the run itself completed.
    pub panics: usize,
    /// Worker threads actually used (1 means the run was sequential).
    pub threads: usize,
}

/// The per-worker recycled state: one engine (internal scratch), the cached
/// identity preference, the scored-preference slot, and the output arena.
struct WorkerState {
    engine: ExplainEngine,
    ident: PreferenceList,
    /// The in-place target of [`ScoreIntoFn`] callbacks, reused across
    /// windows so scored streams stay on the zero-allocation path.
    scored: PreferenceList,
    arena: ExplanationArena,
}

impl WorkerState {
    fn new(cfg: KsConfig) -> Self {
        Self {
            engine: ExplainEngine::with_config(cfg),
            ident: PreferenceList::identity(0),
            scored: PreferenceList::identity(0),
            arena: ExplanationArena::new(),
        }
    }
}

/// How the streaming engine derives each window's preference — the
/// internal union of the public entry points' score arguments.
#[derive(Clone, Copy)]
enum ScoreMode<'a> {
    /// The identity order (cached per worker).
    Identity,
    /// A fresh [`PreferenceList`] per window ([`ScoreFn`]).
    Owned(ScoreFn<'a>),
    /// The worker-recycled in-place form ([`ScoreIntoFn`]).
    Recycled(ScoreIntoFn<'a>),
}

/// Reorders completed windows into arrival order with a preallocated ring —
/// no per-window allocation, unlike a `BTreeMap`. Capacity is sized to the
/// maximum number of undelivered windows (every stage of the pipeline is
/// bounded), with a defensive regrow should that invariant ever break.
struct ReorderRing {
    slots: Vec<Option<StreamResult>>,
    next: usize,
}

impl ReorderRing {
    fn new(capacity: usize) -> Self {
        Self { slots: (0..capacity.max(1)).map(|_| None).collect(), next: 0 }
    }

    fn insert(&mut self, result: StreamResult) {
        debug_assert!(result.window >= self.next, "window {} delivered twice", result.window);
        if result.window - self.next >= self.slots.len()
            || self.slots[result.window % self.slots.len()].is_some()
        {
            self.grow(result.window - self.next + 1);
        }
        let idx = result.window % self.slots.len();
        self.slots[idx] = Some(result);
    }

    fn pop_ready(&mut self) -> Option<StreamResult> {
        let idx = self.next % self.slots.len();
        let result = self.slots[idx].take()?;
        self.next += 1;
        Some(result)
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Rebuilds at a larger capacity; pending entries keep their logical
    /// position (`window % capacity` changes, so they are re-placed).
    fn grow(&mut self, needed: usize) {
        let capacity = (self.slots.len().max(needed) + 1).next_power_of_two();
        let old = std::mem::replace(&mut self.slots, (0..capacity).map(|_| None).collect());
        for result in old.into_iter().flatten() {
            let idx = result.window % capacity;
            debug_assert!(self.slots[idx].is_none());
            self.slots[idx] = Some(result);
        }
    }
}

/// A bounded-memory streaming explainer over an indexed reference.
///
/// # Examples
///
/// ```
/// use moche_core::{ReferenceIndex, StreamingBatchExplainer, WindowReport};
///
/// let reference: Vec<f64> = (0..64).map(|i| f64::from(i % 8)).collect();
/// let index = ReferenceIndex::new(&reference).unwrap();
/// let windows = (0..100u32).map(|w| {
///     (0..32).map(|i| f64::from((i + w) % 8) + 4.0).collect::<Vec<f64>>()
/// });
///
/// let streamer = StreamingBatchExplainer::new(0.05).unwrap().buffer(4);
/// let mut sizes = Vec::new();
/// let summary = streamer.explain_stream(&index, windows, None, |r| {
///     if let Ok(WindowReport::Explained(e)) = r.result {
///         sizes.push(e.size());
///     }
/// });
/// assert_eq!(summary.windows, 100);
/// assert_eq!(summary.explained, sizes.len());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StreamingBatchExplainer {
    cfg: KsConfig,
    threads: usize,
    buffer: usize,
    mode: StreamMode,
}

impl StreamingBatchExplainer {
    /// Creates a streaming explainer for significance level `alpha`, using
    /// all available cores and an automatic buffer bound.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        Ok(Self::with_config(KsConfig::new(alpha)?))
    }

    /// Creates a streaming explainer from an existing [`KsConfig`].
    pub fn with_config(cfg: KsConfig) -> Self {
        Self { cfg, threads: 0, buffer: 0, mode: StreamMode::default() }
    }

    /// Caps the worker-thread count. `0` (the default) means "one per
    /// available core".
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Bounds the number of windows buffered ahead of the workers. `0`
    /// (the default) picks `2 × threads`, minimum 4. Total memory held by a
    /// run is `O((buffer + threads) · window size)`.
    #[must_use]
    pub fn buffer(mut self, buffer: usize) -> Self {
        self.buffer = buffer;
        self
    }

    /// Selects what to compute per window (full explanations vs Phase-1
    /// sizes only).
    #[must_use]
    pub fn mode(mut self, mode: StreamMode) -> Self {
        self.mode = mode;
        self
    }

    /// The KS configuration in use.
    #[inline]
    pub fn config(&self) -> &KsConfig {
        &self.cfg
    }

    /// The number of worker threads a run would actually use (the
    /// configured cap, or the core count for `0`). `1` means runs will be
    /// sequential.
    pub fn effective_threads(&self) -> usize {
        self.worker_count()
    }

    fn worker_count(&self) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        if self.threads == 0 {
            hw
        } else {
            self.threads.max(1)
        }
    }

    fn buffer_bound(&self, workers: usize) -> usize {
        if self.buffer == 0 {
            (2 * workers).max(4)
        } else {
            self.buffer.max(1)
        }
    }

    /// Streams every window through the worker pool, calling `on_result`
    /// once per window **in arrival order**. `score`, when given, derives
    /// each window's preference inside the workers
    /// ([`StreamMode::SizeOnly`] ignores it — Phase 1 needs no
    /// preference); `None` uses the identity order.
    ///
    /// The callback takes ownership of each result. For the fully recycled
    /// constant-memory loop (windows filled into reused buffers, outputs
    /// borrowed and reclaimed), see
    /// [`explain_source`](Self::explain_source).
    ///
    /// Results are byte-identical to [`crate::batch::BatchExplainer`] over
    /// the same windows (enforced by `tests/proptest_indexed.rs`).
    pub fn explain_stream<I, F>(
        &self,
        reference: &ReferenceIndex,
        windows: I,
        score: Option<ScoreFn<'_>>,
        mut on_result: F,
    ) -> StreamSummary
    where
        I: IntoIterator<Item = Vec<f64>>,
        I::IntoIter: Send,
        F: FnMut(StreamResult),
    {
        let score = score.map_or(ScoreMode::Identity, ScoreMode::Owned);
        self.run(reference, IterSource(windows.into_iter()), score, |result| {
            on_result(result);
            None
        })
    }

    /// [`explain_stream`](Self::explain_stream) over a fill-style
    /// [`WindowSource`], with every per-window buffer recycled:
    ///
    /// * the source overwrites reused `Vec<f64>` buffers instead of
    ///   allocating windows — drained buffers are returned to the feeder;
    /// * results are lent to `on_result` by reference, and consumed
    ///   explanation outputs are reclaimed into [`ExplanationArena`]s the
    ///   workers reuse.
    ///
    /// After warm-up a single-threaded run performs zero heap allocations
    /// per window; output is identical to
    /// [`explain_stream`](Self::explain_stream) over the same windows.
    pub fn explain_source<S, F>(
        &self,
        reference: &ReferenceIndex,
        source: S,
        score: Option<ScoreFn<'_>>,
        mut on_result: F,
    ) -> StreamSummary
    where
        S: WindowSource + Send,
        F: FnMut(&StreamResult),
    {
        let score = score.map_or(ScoreMode::Identity, ScoreMode::Owned);
        self.run(reference, source, score, |result| {
            on_result(&result);
            match result.result {
                Ok(WindowReport::Explained(e)) => Some(e),
                _ => None,
            }
        })
    }

    /// [`explain_source`](Self::explain_source) with an in-place score
    /// callback: each window's preference is written into a worker-recycled
    /// [`PreferenceList`] ([`ScoreIntoFn`], e.g. via
    /// [`PreferenceList::fill_from_scores_desc`]) instead of being
    /// allocated per window. With this entry point *scored* streams join
    /// the zero-allocation steady state previously reserved for
    /// identity-preference streams (gated by the
    /// `scored_stream_allocates_nothing_when_warm` test); results are
    /// identical to [`explain_source`](Self::explain_source) with the
    /// equivalent owning callback.
    pub fn explain_source_scored<S, F>(
        &self,
        reference: &ReferenceIndex,
        source: S,
        score: ScoreIntoFn<'_>,
        mut on_result: F,
    ) -> StreamSummary
    where
        S: WindowSource + Send,
        F: FnMut(&StreamResult),
    {
        self.run(reference, source, ScoreMode::Recycled(score), |result| {
            on_result(&result);
            match result.result {
                Ok(WindowReport::Explained(e)) => Some(e),
                _ => None,
            }
        })
    }

    /// Shared driver behind the public entry points. The sink consumes
    /// each in-order result and may hand a consumed explanation back for
    /// output-buffer recycling.
    fn run<S, F>(
        &self,
        reference: &ReferenceIndex,
        source: S,
        score: ScoreMode<'_>,
        sink: F,
    ) -> StreamSummary
    where
        S: WindowSource + Send,
        F: FnMut(StreamResult) -> Option<Explanation>,
    {
        let workers = self.worker_count();
        if workers <= 1 {
            self.run_sequential(reference, source, score, sink)
        } else {
            self.run_parallel(reference, source, score, sink, workers)
        }
    }

    /// [`process`](Self::process) under `catch_unwind`: a panicking window
    /// (a buggy score callback, an injected fault) is isolated to its own
    /// result as [`MocheError::WorkerPanicked`]. The worker state may be
    /// mid-mutation when the panic lands, so it is rebuilt before the next
    /// window — correctness over the rare-path allocation.
    fn process_caught(
        &self,
        state: &mut WorkerState,
        reference: &ReferenceIndex,
        score: ScoreMode<'_>,
        window_id: usize,
        window: &[f64],
    ) -> Result<WindowReport, MocheError> {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::fault::failpoint("stream.worker");
            self.process(state, reference, score, window_id, window)
        }));
        match attempt {
            Ok(result) => result,
            Err(payload) => {
                *state = WorkerState::new(self.cfg);
                Err(MocheError::WorkerPanicked {
                    window: window_id,
                    message: crate::fault::panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// One window's computation, on worker-owned state: the engine's
    /// scratch, the cached identity preference and the output arena are all
    /// recycled, so steady-state streams allocate nothing here.
    fn process(
        &self,
        state: &mut WorkerState,
        reference: &ReferenceIndex,
        score: ScoreMode<'_>,
        window_id: usize,
        window: &[f64],
    ) -> Result<WindowReport, MocheError> {
        match self.mode {
            StreamMode::SizeOnly => {
                state.engine.size_with_index(reference, window).map(WindowReport::Size)
            }
            StreamMode::Explain => {
                let owned;
                let pref = match score {
                    ScoreMode::Owned(score) => {
                        owned = score(window_id, window)?;
                        &owned
                    }
                    ScoreMode::Recycled(score) => {
                        score(window_id, window, &mut state.scored)?;
                        &state.scored
                    }
                    ScoreMode::Identity => {
                        if state.ident.len() != window.len() {
                            state.ident.fill_identity(window.len());
                        }
                        &state.ident
                    }
                };
                state
                    .engine
                    .explain_with_index_in(reference, window, pref, &mut state.arena)
                    .map(WindowReport::Explained)
            }
        }
    }

    fn run_sequential<S, F>(
        &self,
        reference: &ReferenceIndex,
        mut source: S,
        score: ScoreMode<'_>,
        mut sink: F,
    ) -> StreamSummary
    where
        S: WindowSource,
        F: FnMut(StreamResult) -> Option<Explanation>,
    {
        let mut summary = StreamSummary { threads: 1, ..StreamSummary::default() };
        let mut state = WorkerState::new(self.cfg);
        let mut window = Vec::new();
        let mut window_id = 0usize;
        loop {
            if matches!(crate::fault::failpoint("stream.feeder"), Some(crate::fault::Fault::Error))
            {
                break; // injected source failure: the stream just ends
            }
            if !source.fill(&mut window) {
                break;
            }
            let result = self.process_caught(&mut state, reference, score, window_id, &window);
            summary.tally(&result);
            if let Some(explanation) = sink(StreamResult { window: window_id, result }) {
                state.arena.recycle(explanation);
            }
            window_id += 1;
        }
        summary
    }

    fn run_parallel<S, F>(
        &self,
        reference: &ReferenceIndex,
        source: S,
        score: ScoreMode<'_>,
        mut sink: F,
        workers: usize,
    ) -> StreamSummary
    where
        S: WindowSource + Send,
        F: FnMut(StreamResult) -> Option<Explanation>,
    {
        let buffer = self.buffer_bound(workers);
        let result_cap = buffer.max(workers);
        let mut summary = StreamSummary { threads: workers, ..StreamSummary::default() };

        // Feeder -> bounded job channel -> workers -> bounded result
        // channel -> in-order delivery on this thread. Both forward
        // channels are bounded, so the stream can run forever in constant
        // memory. Two *bounded return rings* close the recycling loop:
        // drained window buffers flow back to the feeder, and consumed
        // explanation buffers flow back to the workers (which each also own
        // one arena — a fixed per-worker slab the ring tops up). Bounded
        // `sync_channel`s preallocate their slot array, so steady-state
        // sends allocate nothing — unlike the unbounded channels they
        // replace, which allocated roughly one block per 31 sends. The
        // capacities cover every buffer that can be in flight at once, so
        // `try_send` never finds the ring full; if the accounting were ever
        // wrong the buffer would be dropped and reallocated, never lost.
        let window_ring_cap = buffer + workers + 2;
        let arena_ring_cap = result_cap + workers + 2;
        let (job_tx, job_rx) = mpsc::sync_channel::<(usize, Vec<f64>)>(buffer);
        // The job receiver is shared by reference-count rather than scope
        // borrow so the delivery thread can *close* the channel (drop its
        // handle after the last worker exits) even on the panic-unwind
        // path — otherwise a feeder blocked on a full job buffer would
        // never observe the shutdown and the scope join would deadlock.
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = mpsc::sync_channel::<StreamResult>(result_cap);
        let (window_return_tx, window_return_rx) = mpsc::sync_channel::<Vec<f64>>(window_ring_cap);
        let (arena_return_tx, arena_return_rx) =
            mpsc::sync_channel::<ExplanationArena>(arena_ring_cap);
        let arena_return_rx = Mutex::new(arena_return_rx);

        // A panic in the caller's sink must not vanish (it is the caller's
        // own bug surfacing) but also must not strand the pipeline: it is
        // caught, the channels are shut down so every thread drains and
        // stops, and the payload is re-raised after the scope has joined.
        let mut sink_panic: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut source = source;
                let mut window_id = 0usize;
                // A panicking source (or an injected feeder fault) is
                // contained here as end-of-stream: the job sender drops,
                // workers drain what was fed and the run ends in order.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    loop {
                        if matches!(
                            crate::fault::failpoint("stream.feeder"),
                            Some(crate::fault::Fault::Error)
                        ) {
                            break;
                        }
                        // Prefer a buffer a worker has drained; allocate only
                        // while the pipeline is still warming up.
                        let mut window = window_return_rx.try_recv().unwrap_or_default();
                        if !source.fill(&mut window) {
                            break;
                        }
                        if job_tx.send((window_id, window)).is_err() {
                            break; // receivers are gone; nothing left to feed
                        }
                        window_id += 1;
                    }
                }));
            });
            for _ in 0..workers {
                let result_tx = result_tx.clone();
                let window_return_tx = window_return_tx.clone();
                let job_rx = Arc::clone(&job_rx);
                let arena_return_rx = &arena_return_rx;
                scope.spawn(move || {
                    let mut state = WorkerState::new(self.cfg);
                    loop {
                        // Sibling panics are caught inside `process_caught`
                        // and can never poison these locks mid-update; a
                        // poisoned flag carries no torn state, so recover
                        // the guard rather than cascade the panic.
                        let job = job_rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                        let Ok((window_id, window)) = job else { break };
                        if !state.arena.has_storage() {
                            let returned = arena_return_rx
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .try_recv();
                            if let Ok(returned) = returned {
                                state.arena = returned;
                            }
                        }
                        let result =
                            self.process_caught(&mut state, reference, score, window_id, &window);
                        // Hand the drained window buffer back to the feeder
                        // (it may already have shut down, or — were the
                        // ring-capacity accounting ever wrong — the ring
                        // could be full; both just drop the buffer).
                        let _ = window_return_tx.try_send(window);
                        if result_tx.send(StreamResult { window: window_id, result }).is_err() {
                            break; // the delivery side is gone: drain-and-stop
                        }
                    }
                });
            }
            drop(result_tx); // the workers hold the remaining clones
            drop(window_return_tx);

            // Reorder completed windows into arrival order. A window can
            // only wait on predecessors still in flight, so the ring
            // capacity covers every pipeline stage.
            let delivery = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut ring = ReorderRing::new(buffer + workers + result_cap + 1);
                for result in result_rx.iter() {
                    crate::fault::failpoint("stream.reorder");
                    ring.insert(result);
                    while let Some(ready) = ring.pop_ready() {
                        summary.tally(&ready.result);
                        if let Some(explanation) = sink(ready) {
                            if matches!(
                                crate::fault::failpoint("stream.arena_return"),
                                Some(crate::fault::Fault::Error)
                            ) {
                                continue; // injected loss: drop, don't return
                            }
                            let _ = arena_return_tx
                                .try_send(ExplanationArena::recycled_from(explanation));
                        }
                    }
                }
                debug_assert!(ring.is_empty(), "every window must be delivered");
            }));
            if let Err(payload) = delivery {
                sink_panic = Some(payload);
            }
            // Shut the pipeline down (idempotent on the normal path, where
            // every thread has already exited): without a result receiver
            // workers stop at their next send, and dropping the last job
            // receiver handle unblocks a feeder waiting on a full buffer.
            drop(result_rx);
            drop(job_rx);
        });
        if let Some(payload) = sink_panic {
            std::panic::resume_unwind(payload);
        }
        summary
    }
}

impl StreamSummary {
    fn tally(&mut self, result: &Result<WindowReport, MocheError>) {
        self.windows += 1;
        match result {
            Ok(_) => self.explained += 1,
            Err(MocheError::TestAlreadyPasses { .. }) => self.passing += 1,
            Err(MocheError::WorkerPanicked { .. }) => {
                self.errors += 1;
                self.panics += 1;
            }
            Err(_) => self.errors += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_vector::SortedReference;
    use crate::batch::BatchExplainer;

    fn setup(count: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
        let reference: Vec<f64> = (0..200u32).map(|i| f64::from(i % 10)).collect();
        let windows: Vec<Vec<f64>> = (0..count)
            .map(|w| (0..50).map(|i| f64::from(((i + w) % 7) as u32) + 5.0).collect())
            .collect();
        (reference, windows)
    }

    fn collect_stream(
        streamer: &StreamingBatchExplainer,
        index: &ReferenceIndex,
        windows: &[Vec<f64>],
    ) -> (Vec<StreamResult>, StreamSummary) {
        let mut out = Vec::new();
        let summary = streamer.explain_stream(index, windows.to_vec(), None, |r| out.push(r));
        (out, summary)
    }

    /// A slice-backed [`WindowSource`] that copies each window into the
    /// recycled buffer — the zero-allocation producer shape.
    fn slice_source(windows: &[Vec<f64>]) -> impl WindowSource + Send + '_ {
        let mut i = 0usize;
        move |buf: &mut Vec<f64>| {
            let Some(w) = windows.get(i) else { return false };
            buf.clear();
            buf.extend_from_slice(w);
            i += 1;
            true
        }
    }

    #[test]
    fn stream_matches_batch_and_arrives_in_order() {
        let (r, windows) = setup(24);
        let index = ReferenceIndex::new(&r).unwrap();
        let shared = SortedReference::new(&r).unwrap();
        let batch = BatchExplainer::new(0.05).unwrap().threads(4);
        let expected = batch.explain_windows(&shared, &windows, None);
        for threads in [1, 4] {
            let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(threads).buffer(3);
            let (results, summary) = collect_stream(&streamer, &index, &windows);
            assert_eq!(summary.windows, windows.len());
            assert_eq!(summary.threads, threads);
            assert_eq!(results.len(), windows.len());
            for (i, (res, exp)) in results.iter().zip(&expected).enumerate() {
                assert_eq!(res.window, i, "results must arrive in window order");
                match (&res.result, exp) {
                    (Ok(WindowReport::Explained(a)), Ok(b)) => assert_eq!(a, b),
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    other => panic!("divergence at window {i}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn recycled_source_matches_owned_stream() {
        let (r, windows) = setup(20);
        let index = ReferenceIndex::new(&r).unwrap();
        for threads in [1, 4] {
            let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(threads).buffer(2);
            let (expected, _) = collect_stream(&streamer, &index, &windows);
            let mut got = Vec::new();
            let summary = streamer.explain_source(&index, slice_source(&windows), None, |r| {
                got.push(r.clone());
            });
            assert_eq!(summary.windows, windows.len());
            assert_eq!(summary.explained, windows.len());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn size_only_matches_full_phase1() {
        let (r, windows) = setup(10);
        let index = ReferenceIndex::new(&r).unwrap();
        let full = StreamingBatchExplainer::new(0.05).unwrap().threads(2).buffer(2);
        let sized = full.mode(StreamMode::SizeOnly);
        let (full_results, _) = collect_stream(&full, &index, &windows);
        let (size_results, summary) = collect_stream(&sized, &index, &windows);
        assert_eq!(summary.explained, windows.len());
        for (f, s) in full_results.iter().zip(&size_results) {
            match (&f.result, &s.result) {
                (Ok(WindowReport::Explained(e)), Ok(WindowReport::Size(k))) => {
                    assert_eq!(&e.phase1, k);
                }
                other => panic!("divergence: {other:?}"),
            }
        }
    }

    #[test]
    fn passing_and_erroring_windows_are_tallied() {
        let (r, mut windows) = setup(4);
        windows.push(r.clone()); // passes the KS test
        windows.push(vec![]); // EmptyTest error
        let index = ReferenceIndex::new(&r).unwrap();
        let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(2).buffer(2);
        let (results, summary) = collect_stream(&streamer, &index, &windows);
        assert_eq!(summary.windows, 6);
        assert_eq!(summary.explained, 4);
        assert_eq!(summary.passing, 1);
        assert_eq!(summary.errors, 1);
        assert!(matches!(results[4].result, Err(MocheError::TestAlreadyPasses { .. })));
        assert!(matches!(results[5].result, Err(MocheError::EmptyTest)));
    }

    /// The satellite coverage for the recycling paths: a stream mixing
    /// explainable windows, NaN windows (hard errors), passing windows and
    /// empty windows must deliver in order with correct summary counts —
    /// and identically at every thread count.
    #[test]
    fn mixed_stream_delivers_in_order_with_correct_counts() {
        let (r, good) = setup(6);
        let index = ReferenceIndex::new(&r).unwrap();
        let mut windows: Vec<Vec<f64>> = Vec::new();
        for (i, w) in good.into_iter().enumerate() {
            windows.push(w); // explainable
            match i % 3 {
                0 => windows.push(vec![f64::NAN, 1.0, 2.0, 3.0]), // NonFiniteValue
                1 => windows.push(r.clone()),                     // passes
                _ => windows.push(vec![]),                        // EmptyTest
            }
        }
        let mut reference_run: Option<Vec<StreamResult>> = None;
        for threads in [1, 3] {
            let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(threads).buffer(2);
            let mut got: Vec<StreamResult> = Vec::new();
            let summary = streamer.explain_source(&index, slice_source(&windows), None, |r| {
                got.push(r.clone());
            });
            assert_eq!(summary.windows, 12);
            assert_eq!(summary.explained, 6);
            assert_eq!(summary.passing, 2);
            assert_eq!(summary.errors, 4, "2 NaN windows + 2 empty windows");
            assert_eq!(summary.explained + summary.passing + summary.errors, summary.windows);
            for (i, res) in got.iter().enumerate() {
                assert_eq!(res.window, i, "in-order delivery (threads = {threads})");
            }
            assert!(matches!(got[1].result, Err(MocheError::NonFiniteValue { .. })));
            assert!(matches!(got[3].result, Err(MocheError::TestAlreadyPasses { .. })));
            assert!(matches!(got[5].result, Err(MocheError::EmptyTest)));
            match &reference_run {
                None => reference_run = Some(got),
                Some(expected) => {
                    // NaN payloads never compare equal, so NonFiniteValue
                    // errors are matched structurally.
                    for (x, y) in got.iter().zip(expected) {
                        assert_eq!(x.window, y.window);
                        match (&x.result, &y.result) {
                            (
                                Err(MocheError::NonFiniteValue { which: w1, index: i1, .. }),
                                Err(MocheError::NonFiniteValue { which: w2, index: i2, .. }),
                            ) => assert!(w1 == w2 && i1 == i2),
                            (a, b) => assert_eq!(a, b, "threads must not change results"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn score_callback_runs_in_workers() {
        let (r, windows) = setup(8);
        let index = ReferenceIndex::new(&r).unwrap();
        let shared = SortedReference::new(&r).unwrap();
        let prefs: Vec<PreferenceList> =
            windows.iter().map(|w| PreferenceList::reversed(w.len())).collect();
        let expected =
            BatchExplainer::new(0.05).unwrap().explain_windows(&shared, &windows, Some(&prefs));
        let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(3).buffer(2);
        let mut results = Vec::new();
        let score: ScoreFn<'_> = &|_, w| Ok(PreferenceList::reversed(w.len()));
        streamer.explain_stream(&index, windows.clone(), Some(score), |r| results.push(r));
        for (res, exp) in results.iter().zip(&expected) {
            match (&res.result, exp) {
                (Ok(WindowReport::Explained(a)), Ok(b)) => assert_eq!(a, b),
                other => panic!("divergence: {other:?}"),
            }
        }
    }

    #[test]
    fn scored_into_matches_owning_score_callback() {
        let (r, windows) = setup(10);
        let index = ReferenceIndex::new(&r).unwrap();
        for threads in [1, 3] {
            let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(threads).buffer(2);
            let mut expected = Vec::new();
            let owning: ScoreFn<'_> = &|_, w| {
                let mut scores: Vec<f64> = w.to_vec();
                scores.iter_mut().for_each(|s| *s = -*s);
                PreferenceList::from_scores_desc(&scores)
            };
            streamer.explain_source(&index, slice_source(&windows), Some(owning), |r| {
                expected.push(r.clone());
            });
            let mut got = Vec::new();
            let recycled: ScoreIntoFn<'_> = &|_, w, pref| {
                let scores: Vec<f64> = w.iter().map(|&v| -v).collect();
                pref.fill_from_scores_desc(&scores)
            };
            let summary =
                streamer.explain_source_scored(&index, slice_source(&windows), recycled, |r| {
                    got.push(r.clone());
                });
            assert_eq!(summary.windows, windows.len());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn scored_into_errors_land_in_the_window_slot() {
        let (r, windows) = setup(3);
        let index = ReferenceIndex::new(&r).unwrap();
        let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(1);
        let score: ScoreIntoFn<'_> = &|i, w, pref| {
            if i == 1 {
                pref.fill_from_scores_desc(&[f64::NAN])
            } else {
                pref.fill_identity(w.len());
                Ok(())
            }
        };
        let mut got = Vec::new();
        streamer.explain_source_scored(&index, slice_source(&windows), score, |r| {
            got.push(r.result.is_ok());
        });
        assert_eq!(got, vec![true, false, true]);
    }

    #[test]
    fn panicking_score_is_isolated_to_its_window() {
        let (r, windows) = setup(8);
        let index = ReferenceIndex::new(&r).unwrap();
        let score: ScoreFn<'_> = &|i, w| {
            if i == 3 {
                panic!("score bug at window {i}");
            }
            Ok(PreferenceList::identity(w.len()))
        };
        for threads in [1, 3] {
            let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(threads).buffer(2);
            let mut got = Vec::new();
            let summary = streamer.explain_stream(&index, windows.clone(), Some(score), |r| {
                got.push(r);
            });
            assert_eq!(summary.windows, windows.len(), "threads = {threads}");
            assert_eq!(summary.panics, 1);
            assert_eq!(summary.errors, 1);
            assert_eq!(summary.explained, windows.len() - 1);
            for (i, res) in got.iter().enumerate() {
                assert_eq!(res.window, i, "in-order delivery survives the panic");
                if i == 3 {
                    match &res.result {
                        Err(MocheError::WorkerPanicked { window, message }) => {
                            assert_eq!(*window, 3);
                            assert!(message.contains("score bug"), "{message}");
                        }
                        other => panic!("expected WorkerPanicked, got {other:?}"),
                    }
                } else {
                    assert!(res.result.is_ok(), "window {i} must be unaffected");
                }
            }
        }
    }

    #[test]
    fn sink_panic_shuts_the_pipeline_down_and_resurfaces() {
        // A panicking result callback must neither deadlock the pipeline
        // (workers blocked on a full result channel, feeder on a full job
        // buffer) nor be swallowed: the run winds down and the panic
        // reaches the caller.
        let (r, windows) = setup(40);
        let index = ReferenceIndex::new(&r).unwrap();
        for threads in [1, 3] {
            let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(threads).buffer(2);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                streamer.explain_stream(&index, windows.clone(), None, |r| {
                    if r.window == 5 {
                        panic!("sink bug");
                    }
                });
            }));
            let payload = caught.expect_err("the sink panic must reach the caller");
            let message = crate::fault::panic_message(payload.as_ref());
            assert!(message.contains("sink bug"), "{message} (threads = {threads})");
        }
    }

    #[test]
    fn panicking_source_ends_a_parallel_stream_early() {
        // In parallel mode the source runs on the feeder thread; a panic
        // there is contained as end-of-stream so the windows already fed
        // are still explained and delivered in order.
        let (r, windows) = setup(6);
        let index = ReferenceIndex::new(&r).unwrap();
        let mut fed = 0usize;
        let source = |buf: &mut Vec<f64>| {
            if fed == 3 {
                panic!("source bug after 3 windows");
            }
            buf.clear();
            buf.extend_from_slice(&windows[fed]);
            fed += 1;
            true
        };
        let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(3).buffer(2);
        let mut got = Vec::new();
        let summary = streamer.explain_source(&index, source, None, |r| {
            got.push(r.window);
        });
        assert_eq!(summary.windows, 3, "exactly the windows fed before the panic");
        assert_eq!(summary.explained, 3);
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn empty_stream_is_fine() {
        let index = ReferenceIndex::new(&[1.0, 2.0]).unwrap();
        let streamer = StreamingBatchExplainer::new(0.05).unwrap();
        let summary = streamer.explain_stream(&index, Vec::<Vec<f64>>::new(), None, |_| {
            panic!("no results expected")
        });
        assert_eq!(summary.windows, 0);
        let summary = streamer.explain_source(
            &index,
            |_: &mut Vec<f64>| false,
            None,
            |_: &StreamResult| panic!("no results expected"),
        );
        assert_eq!(summary.windows, 0);
    }

    #[test]
    fn reorder_ring_delivers_any_arrival_order() {
        let result = |w: usize| StreamResult { window: w, result: Err(MocheError::EmptyTest) };
        let mut ring = ReorderRing::new(4);
        let mut delivered = Vec::new();
        for w in [2usize, 0, 3, 1, 4, 6, 5] {
            ring.insert(result(w));
            while let Some(r) = ring.pop_ready() {
                delivered.push(r.window);
            }
        }
        assert_eq!(delivered, vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(ring.is_empty());
    }

    #[test]
    fn reorder_ring_grows_past_its_capacity() {
        // Deliberately exceed the declared capacity: the ring must regrow
        // rather than clobber or panic.
        let result = |w: usize| StreamResult { window: w, result: Err(MocheError::EmptyTest) };
        let mut ring = ReorderRing::new(2);
        let mut delivered = Vec::new();
        for w in (1..10).chain([0]) {
            ring.insert(result(w));
            while let Some(r) = ring.pop_ready() {
                delivered.push(r.window);
            }
        }
        assert_eq!(delivered, (0..10).collect::<Vec<_>>());
        assert!(ring.is_empty());
    }
}
