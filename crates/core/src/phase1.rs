//! Phase 1 of MOCHE: finding the explanation size `k`
//! (Sections 4.3 and 4.4 of the paper).
//!
//! All counterfactual explanations of a failed KS test share the same size
//! `k` — the smallest `h` for which a qualified `h`-subset exists. Phase 1
//! finds `k` in two steps:
//!
//! 1. **Lower bound `k̂` by binary search (Theorem 2).** The relaxed
//!    necessary condition is monotone in `h`, so the smallest `h`
//!    satisfying it — a lower bound on `k` — is found with
//!    `O(log m)` condition evaluations, i.e. `O((n + m) log m)` time.
//! 2. **Exact size by linear scan (Theorem 1).** Starting from `k̂`, scan
//!    upward with the exact existence check until it succeeds. The
//!    experiments (Figure 6) show `k - k̂` is almost always 0 or 1, so this
//!    scan is short in practice; the worst case restores the naive
//!    `O(m (n + m))`.
//!
//! The ablation variant [`find_size_no_lower_bound`] (the paper's
//! `MOCHE_ns`) skips step 1 and scans from `h = 1`.
//!
//! ## The wavefront size search
//!
//! The adaptive binary search of step 1 performs `O(log m)` *sequential*
//! scans: every probe re-traverses `C_T`/`C_R` and re-pays the `Ω(h)`/scale
//! setup. [`lower_bound_wavefront`] exploits the same monotonicity
//! differently: one fused pass evaluates the Theorem-2 predicate for
//! [`WAVEFRONT_PROBES`] evenly spaced `h` values *simultaneously*
//! ([`BoundsContext::necessary_condition_multi`]), then recurses into the
//! surviving interval — `log_{B+1}(m)` fused passes (six at `B = 4`,
//! `m = 10_000`) instead of ~14 scans, with each pass's array traffic and
//! loop overhead amortized across its probes and the per-lane arithmetic
//! auto-vectorized. Because the predicate is monotone in `h` (the
//! soundness premise of both searches, pinned by `proptest_phase1.rs`),
//! the returned `k̂` is identical to the binary search's.

use crate::bounds::{BoundsContext, MAX_WAVEFRONT};
use crate::error::MocheError;

/// The result of the Phase-1 size search, including the counters needed for
/// the paper's efficiency experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeSearch {
    /// The explanation size `k`.
    pub k: usize,
    /// The lower bound `k̂` from the Theorem-2 binary search. Equal to `k`
    /// when the bound is tight; for [`find_size_no_lower_bound`] this is
    /// reported as `1`.
    pub k_hat: usize,
    /// Number of Theorem-1 (exact) existence checks performed.
    pub theorem1_checks: usize,
    /// Number of Theorem-2 (necessary-condition) checks performed.
    pub theorem2_checks: usize,
}

impl SizeSearch {
    /// The estimation error `EE = k - k̂` studied in Figure 6 of the paper.
    #[inline]
    pub fn estimation_error(&self) -> usize {
        self.k - self.k_hat
    }
}

/// Binary-searches the smallest `h` in `1..m` satisfying the Theorem-2
/// necessary condition. Returns the bound and the number of condition
/// evaluations, or `None` if even `h = m - 1` fails the condition (then no
/// explanation exists).
pub fn lower_bound(ctx: &BoundsContext<'_>) -> (Option<usize>, usize) {
    let m = ctx.base().m();
    if m < 2 {
        return (None, 0);
    }
    let mut checks = 0usize;
    // Invariant: predicate is false for every h < lo, true for every h >= hi
    // (if hi is a witness). Classic first-true search on a monotone predicate.
    let mut lo = 1usize;
    let mut hi = m - 1;
    checks += 1;
    if !ctx.necessary_condition(hi) {
        return (None, checks);
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        checks += 1;
        if ctx.necessary_condition(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (Some(lo), checks)
}

/// Probes per fused wavefront pass. Each pass shrinks the candidate
/// interval by a factor of `WAVEFRONT_PROBES + 1` (versus 2 for a binary
/// search step) while traversing `C_T`/`C_R` once. Empirically chosen:
/// fused lanes cost a fraction of a scalar scan (the array traffic and
/// loop overhead amortize, the lane arithmetic vectorizes), but that
/// fraction grows with the lane count (register pressure), so the product
/// `passes(B) × pass_cost(B)` bottoms out at a small `B` — 4 on both
/// baseline x86-64 (SSE2) and `x86-64-v3` (AVX2+FMA) codegen, roughly at
/// parity with the binary search on the former and ~2x ahead on the
/// latter. Bounded by [`MAX_WAVEFRONT`], the widest kernel
/// [`BoundsContext::necessary_condition_multi`] offers.
pub const WAVEFRONT_PROBES: usize = 4;

/// [`lower_bound`] restructured as a wavefront search: each round evaluates
/// up to [`WAVEFRONT_PROBES`] evenly spaced `h` values in one fused pass
/// over the base arrays, then recurses into the interval between the last
/// failing and the first satisfying probe. Returns the same `(k̂, check
/// count)` contract as [`lower_bound`]; under the monotone Theorem-2
/// predicate the returned `k̂` is identical (each probed `h` counts as one
/// check, so the *count* is higher while the wall clock is several times
/// lower — passes, not probes, dominate).
pub fn lower_bound_wavefront(ctx: &BoundsContext<'_>) -> (Option<usize>, usize) {
    const B: usize = WAVEFRONT_PROBES;
    // Compile-time guard: the fused kernel caps its lane count.
    const _: () = assert!(WAVEFRONT_PROBES <= MAX_WAVEFRONT);
    let m = ctx.base().m();
    if m < 2 {
        return (None, 0);
    }
    let mut checks = 1usize;
    if !ctx.necessary_condition(m - 1) {
        return (None, checks);
    }
    // Invariant: the predicate is false for every h < lo (each round probes
    // the new lo - 1, or lo stays 1), and true at hi. Identical to the
    // binary search's invariant, so the two searches converge to the same
    // smallest satisfying h.
    let (mut lo, mut hi) = (1usize, m - 1);
    let mut hs = [0usize; B];
    let mut ok = [false; B];
    while lo < hi {
        let span = hi - lo; // candidates lo..hi; hi is known-true
        if span <= B {
            // Final round: probe every remaining candidate at once.
            for (j, slot) in hs[..span].iter_mut().enumerate() {
                *slot = lo + j;
            }
            checks += span;
            ctx.necessary_condition_multi(&hs[..span], &mut ok[..span]);
            let first = ok[..span].iter().position(|&b| b);
            return (Some(first.map_or(hi, |j| lo + j)), checks);
        }
        // Interior probes at lo + ceil-free even subdivision; span > B
        // guarantees the probes are strictly increasing and inside lo..hi.
        for (j, slot) in hs.iter_mut().enumerate() {
            *slot = lo + (j + 1) * span / (B + 1);
        }
        checks += B;
        ctx.necessary_condition_multi(&hs, &mut ok);
        match ok.iter().position(|&b| b) {
            Some(0) => hi = hs[0],
            Some(j) => {
                lo = hs[j - 1] + 1;
                hi = hs[j];
            }
            None => lo = hs[B - 1] + 1,
        }
    }
    (Some(lo), checks)
}

/// The shared tail of every `find_size_*` variant: the Theorem-1 scan
/// upward from `k_hat` (`None` means the lower-bound search already proved
/// no explanation exists).
#[allow(clippy::explicit_counter_loop)] // the counter is the reported diagnostic
fn scan_from(
    ctx: &BoundsContext<'_>,
    k_hat: Option<usize>,
    theorem2_checks: usize,
    alpha: f64,
) -> Result<SizeSearch, MocheError> {
    let Some(k_hat) = k_hat else {
        return Err(MocheError::NoExplanation { alpha });
    };
    let mut theorem1_checks = 0usize;
    for h in k_hat..ctx.base().m() {
        theorem1_checks += 1;
        if ctx.exists_qualified(h) {
            return Ok(SizeSearch { k: h, k_hat, theorem1_checks, theorem2_checks });
        }
    }
    Err(MocheError::NoExplanation { alpha })
}

/// [`find_size`] with the wavefront lower bound: Phase 1 as run by the
/// default [`SizeSearchStrategy::Wavefront`](crate::SizeSearchStrategy).
/// `k` and `k̂` are identical to [`find_size`]'s; only the reported
/// `theorem2_checks` differs (probes are batched into fused passes).
///
/// # Errors
///
/// As for [`find_size`].
pub fn find_size_wavefront(ctx: &BoundsContext<'_>, alpha: f64) -> Result<SizeSearch, MocheError> {
    let (k_hat, theorem2_checks) = lower_bound_wavefront(ctx);
    scan_from(ctx, k_hat, theorem2_checks, alpha)
}

/// Finds the explanation size `k` with the Theorem-2 lower bound followed by
/// the Theorem-1 scan. This is MOCHE's Phase 1.
///
/// The caller must have established that the KS test between `R` and `T`
/// fails; for a passing test the notion of explanation size is undefined.
///
/// # Errors
///
/// Returns [`MocheError::NoExplanation`] when no subset of `T` of any size
/// `1..m` reverses the test (possible only for `alpha > 2/e^2`).
pub fn find_size(ctx: &BoundsContext<'_>, alpha: f64) -> Result<SizeSearch, MocheError> {
    let (k_hat, theorem2_checks) = lower_bound(ctx);
    scan_from(ctx, k_hat, theorem2_checks, alpha)
}

/// The `MOCHE_ns` ablation: finds `k` by scanning `h = 1, 2, ...` with the
/// Theorem-1 check, without the Theorem-2 lower bound (Section 6.4).
///
/// # Errors
///
/// Returns [`MocheError::NoExplanation`] when no subset reverses the test.
pub fn find_size_no_lower_bound(
    ctx: &BoundsContext<'_>,
    alpha: f64,
) -> Result<SizeSearch, MocheError> {
    scan_from(ctx, Some(1), 0, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_vector::BaseVector;
    use crate::ks::KsConfig;

    fn paper_ctx() -> (BaseVector, KsConfig) {
        let r = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
        let t = vec![13.0, 13.0, 12.0, 20.0];
        (BaseVector::build(&r, &t).unwrap(), KsConfig::new(0.3).unwrap())
    }

    #[test]
    fn paper_examples_4_and_5() {
        let (base, cfg) = paper_ctx();
        let ctx = BoundsContext::new(&base, &cfg);
        let s = find_size(&ctx, cfg.alpha()).unwrap();
        assert_eq!(s.k, 2, "Example 4: the explanation size is 2");
        assert_eq!(s.k_hat, 2, "Example 5: the binary search concludes k_hat = 2");
        assert_eq!(s.estimation_error(), 0);
    }

    #[test]
    fn ablation_agrees_with_main_path() {
        let (base, cfg) = paper_ctx();
        let ctx = BoundsContext::new(&base, &cfg);
        let a = find_size(&ctx, cfg.alpha()).unwrap();
        let b = find_size_no_lower_bound(&ctx, cfg.alpha()).unwrap();
        assert_eq!(a.k, b.k);
        assert!(b.theorem1_checks >= a.theorem1_checks);
    }

    #[test]
    fn lower_bound_never_exceeds_k() {
        let r: Vec<f64> = (0..80).map(|i| f64::from(i % 10)).collect();
        let t: Vec<f64> = (0..60).map(|i| f64::from(i % 5) + 3.0).collect();
        let base = BaseVector::build(&r, &t).unwrap();
        let cfg = KsConfig::new(0.05).unwrap();
        assert!(base.outcome(&cfg).rejected);
        let ctx = BoundsContext::new(&base, &cfg);
        let s = find_size(&ctx, cfg.alpha()).unwrap();
        assert!(s.k_hat <= s.k, "k_hat = {} > k = {}", s.k_hat, s.k);
        // The scan starting at k_hat performs exactly k - k_hat + 1 checks.
        assert_eq!(s.theorem1_checks, s.k - s.k_hat + 1);
    }

    #[test]
    fn binary_search_uses_logarithmic_checks() {
        let r: Vec<f64> = (0..1000).map(|i| f64::from(i % 100)).collect();
        let t: Vec<f64> = (0..1000).map(|i| f64::from(i % 50) + 30.0).collect();
        let base = BaseVector::build(&r, &t).unwrap();
        let cfg = KsConfig::new(0.05).unwrap();
        assert!(base.outcome(&cfg).rejected);
        let ctx = BoundsContext::new(&base, &cfg);
        let s = find_size(&ctx, cfg.alpha()).unwrap();
        // ceil(log2(999)) = 10, plus the initial feasibility probe.
        assert!(s.theorem2_checks <= 12, "checks = {}", s.theorem2_checks);
    }

    #[test]
    fn no_explanation_for_huge_alpha_single_point_test() {
        // With alpha far above 2/e^2 and a 2-point test set wildly different
        // from R, even removing 1 point may not reverse the test.
        let r: Vec<f64> = (0..100).map(f64::from).collect();
        let t = vec![1_000.0, 2_000.0];
        let cfg = KsConfig::new(0.9).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        assert!(base.outcome(&cfg).rejected);
        let ctx = BoundsContext::new(&base, &cfg);
        match find_size(&ctx, cfg.alpha()) {
            Err(MocheError::NoExplanation { .. }) => {}
            other => panic!("expected NoExplanation, got {other:?}"),
        }
        match find_size_no_lower_bound(&ctx, cfg.alpha()) {
            Err(MocheError::NoExplanation { .. }) => {}
            other => panic!("expected NoExplanation, got {other:?}"),
        }
    }

    #[test]
    fn size_one_when_single_outlier() {
        // T equals R except for one far outlier; removing it should suffice
        // if the outlier alone breaks the test.
        let r: Vec<f64> = (0..40).map(|i| f64::from(i % 20)).collect();
        let mut t: Vec<f64> = (0..39).map(|i| f64::from(i % 20)).collect();
        t.push(1.0e6);
        let cfg = KsConfig::new(0.05).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        // This particular construction may or may not fail; only assert when
        // it does.
        if base.outcome(&cfg).rejected {
            let ctx = BoundsContext::new(&base, &cfg);
            let s = find_size(&ctx, cfg.alpha()).unwrap();
            assert!(s.k >= 1);
        }
    }

    #[test]
    fn wavefront_matches_scalar_on_paper_example() {
        let (base, cfg) = paper_ctx();
        let ctx = BoundsContext::new(&base, &cfg);
        let scalar = find_size(&ctx, cfg.alpha()).unwrap();
        let wave = find_size_wavefront(&ctx, cfg.alpha()).unwrap();
        assert_eq!(wave.k, scalar.k);
        assert_eq!(wave.k_hat, scalar.k_hat);
        assert_eq!(wave.theorem1_checks, scalar.theorem1_checks);
    }

    #[test]
    fn wavefront_matches_scalar_across_sizes() {
        // Interval spans below, at and above WAVEFRONT_PROBES, including
        // m = 2 (degenerate single-candidate search).
        for m in [2usize, 3, 7, WAVEFRONT_PROBES, WAVEFRONT_PROBES + 1, 60, 331, 1000] {
            let r: Vec<f64> = (0..(2 * m)).map(|i| f64::from((i % 10) as u32)).collect();
            let t: Vec<f64> = (0..m).map(|i| f64::from((i % 5) as u32) + 4.0).collect();
            let base = BaseVector::build(&r, &t).unwrap();
            let cfg = KsConfig::new(0.05).unwrap();
            if !base.outcome(&cfg).rejected {
                continue;
            }
            let ctx = BoundsContext::new(&base, &cfg);
            let (scalar_k_hat, _) = lower_bound(&ctx);
            let (wave_k_hat, _) = lower_bound_wavefront(&ctx);
            assert_eq!(wave_k_hat, scalar_k_hat, "m = {m}");
            match (find_size(&ctx, 0.05), find_size_wavefront(&ctx, 0.05)) {
                (Ok(s), Ok(w)) => {
                    assert_eq!((w.k, w.k_hat), (s.k, s.k_hat), "m = {m}");
                    assert_eq!(w.theorem1_checks, s.theorem1_checks, "m = {m}");
                }
                (Err(_), Err(_)) => {}
                other => panic!("divergence at m = {m}: {other:?}"),
            }
        }
    }

    #[test]
    fn wavefront_reports_no_explanation_like_scalar() {
        let r: Vec<f64> = (0..100).map(f64::from).collect();
        let t = vec![1_000.0, 2_000.0];
        let cfg = KsConfig::new(0.9).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        match find_size_wavefront(&ctx, cfg.alpha()) {
            Err(MocheError::NoExplanation { .. }) => {}
            other => panic!("expected NoExplanation, got {other:?}"),
        }
    }

    #[test]
    fn wavefront_uses_few_fused_rounds() {
        // checks counts probed h values; with B probes per pass the probe
        // count is bounded by passes * B + 1, and passes is logarithmic in
        // base B + 1.
        let r: Vec<f64> = (0..1000).map(|i| f64::from(i % 100)).collect();
        let t: Vec<f64> = (0..1000).map(|i| f64::from(i % 50) + 30.0).collect();
        let base = BaseVector::build(&r, &t).unwrap();
        let cfg = KsConfig::new(0.05).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let (k_hat, checks) = lower_bound_wavefront(&ctx);
        assert!(k_hat.is_some());
        // Each pass of B probes shrinks the candidate interval by a factor
        // of B + 1, so the probe count is bounded by
        // ceil(log_{B+1}(m)) * B, plus the initial feasibility probe.
        let m = base.m() as f64;
        let passes = (m.ln() / ((WAVEFRONT_PROBES + 1) as f64).ln()).ceil() as usize;
        assert!(checks <= passes * WAVEFRONT_PROBES + 1, "checks = {checks}, passes = {passes}");
    }

    #[test]
    fn k_is_minimal_against_exhaustive_theorem1() {
        let (base, cfg) = paper_ctx();
        let ctx = BoundsContext::new(&base, &cfg);
        let s = find_size(&ctx, cfg.alpha()).unwrap();
        for h in 1..s.k {
            assert!(!ctx.exists_qualified(h), "h = {h} should not be qualified");
        }
        assert!(ctx.exists_qualified(s.k));
    }
}
