//! Phase 1 of MOCHE: finding the explanation size `k`
//! (Sections 4.3 and 4.4 of the paper).
//!
//! All counterfactual explanations of a failed KS test share the same size
//! `k` — the smallest `h` for which a qualified `h`-subset exists. Phase 1
//! finds `k` in two steps:
//!
//! 1. **Lower bound `k̂` by binary search (Theorem 2).** The relaxed
//!    necessary condition is monotone in `h`, so the smallest `h`
//!    satisfying it — a lower bound on `k` — is found with
//!    `O(log m)` condition evaluations, i.e. `O((n + m) log m)` time.
//! 2. **Exact size by linear scan (Theorem 1).** Starting from `k̂`, scan
//!    upward with the exact existence check until it succeeds. The
//!    experiments (Figure 6) show `k - k̂` is almost always 0 or 1, so this
//!    scan is short in practice; the worst case restores the naive
//!    `O(m (n + m))`.
//!
//! The ablation variant [`find_size_no_lower_bound`] (the paper's
//! `MOCHE_ns`) skips step 1 and scans from `h = 1`.

use crate::bounds::BoundsContext;
use crate::error::MocheError;

/// The result of the Phase-1 size search, including the counters needed for
/// the paper's efficiency experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeSearch {
    /// The explanation size `k`.
    pub k: usize,
    /// The lower bound `k̂` from the Theorem-2 binary search. Equal to `k`
    /// when the bound is tight; for [`find_size_no_lower_bound`] this is
    /// reported as `1`.
    pub k_hat: usize,
    /// Number of Theorem-1 (exact) existence checks performed.
    pub theorem1_checks: usize,
    /// Number of Theorem-2 (necessary-condition) checks performed.
    pub theorem2_checks: usize,
}

impl SizeSearch {
    /// The estimation error `EE = k - k̂` studied in Figure 6 of the paper.
    #[inline]
    pub fn estimation_error(&self) -> usize {
        self.k - self.k_hat
    }
}

/// Binary-searches the smallest `h` in `1..m` satisfying the Theorem-2
/// necessary condition. Returns the bound and the number of condition
/// evaluations, or `None` if even `h = m - 1` fails the condition (then no
/// explanation exists).
pub fn lower_bound(ctx: &BoundsContext<'_>) -> (Option<usize>, usize) {
    let m = ctx.base().m();
    if m < 2 {
        return (None, 0);
    }
    let mut checks = 0usize;
    // Invariant: predicate is false for every h < lo, true for every h >= hi
    // (if hi is a witness). Classic first-true search on a monotone predicate.
    let mut lo = 1usize;
    let mut hi = m - 1;
    checks += 1;
    if !ctx.necessary_condition(hi) {
        return (None, checks);
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        checks += 1;
        if ctx.necessary_condition(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (Some(lo), checks)
}

/// Finds the explanation size `k` with the Theorem-2 lower bound followed by
/// the Theorem-1 scan. This is MOCHE's Phase 1.
///
/// The caller must have established that the KS test between `R` and `T`
/// fails; for a passing test the notion of explanation size is undefined.
///
/// # Errors
///
/// Returns [`MocheError::NoExplanation`] when no subset of `T` of any size
/// `1..m` reverses the test (possible only for `alpha > 2/e^2`).
#[allow(clippy::explicit_counter_loop)] // the counter is the reported diagnostic
pub fn find_size(ctx: &BoundsContext<'_>, alpha: f64) -> Result<SizeSearch, MocheError> {
    let m = ctx.base().m();
    let (k_hat, theorem2_checks) = lower_bound(ctx);
    let Some(k_hat) = k_hat else {
        return Err(MocheError::NoExplanation { alpha });
    };
    let mut theorem1_checks = 0usize;
    for h in k_hat..m {
        theorem1_checks += 1;
        if ctx.exists_qualified(h) {
            return Ok(SizeSearch { k: h, k_hat, theorem1_checks, theorem2_checks });
        }
    }
    Err(MocheError::NoExplanation { alpha })
}

/// The `MOCHE_ns` ablation: finds `k` by scanning `h = 1, 2, ...` with the
/// Theorem-1 check, without the Theorem-2 lower bound (Section 6.4).
///
/// # Errors
///
/// Returns [`MocheError::NoExplanation`] when no subset reverses the test.
#[allow(clippy::explicit_counter_loop)] // the counter is the reported diagnostic
pub fn find_size_no_lower_bound(
    ctx: &BoundsContext<'_>,
    alpha: f64,
) -> Result<SizeSearch, MocheError> {
    let m = ctx.base().m();
    let mut theorem1_checks = 0usize;
    for h in 1..m {
        theorem1_checks += 1;
        if ctx.exists_qualified(h) {
            return Ok(SizeSearch { k: h, k_hat: 1, theorem1_checks, theorem2_checks: 0 });
        }
    }
    Err(MocheError::NoExplanation { alpha })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_vector::BaseVector;
    use crate::ks::KsConfig;

    fn paper_ctx() -> (BaseVector, KsConfig) {
        let r = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
        let t = vec![13.0, 13.0, 12.0, 20.0];
        (BaseVector::build(&r, &t).unwrap(), KsConfig::new(0.3).unwrap())
    }

    #[test]
    fn paper_examples_4_and_5() {
        let (base, cfg) = paper_ctx();
        let ctx = BoundsContext::new(&base, &cfg);
        let s = find_size(&ctx, cfg.alpha()).unwrap();
        assert_eq!(s.k, 2, "Example 4: the explanation size is 2");
        assert_eq!(s.k_hat, 2, "Example 5: the binary search concludes k_hat = 2");
        assert_eq!(s.estimation_error(), 0);
    }

    #[test]
    fn ablation_agrees_with_main_path() {
        let (base, cfg) = paper_ctx();
        let ctx = BoundsContext::new(&base, &cfg);
        let a = find_size(&ctx, cfg.alpha()).unwrap();
        let b = find_size_no_lower_bound(&ctx, cfg.alpha()).unwrap();
        assert_eq!(a.k, b.k);
        assert!(b.theorem1_checks >= a.theorem1_checks);
    }

    #[test]
    fn lower_bound_never_exceeds_k() {
        let r: Vec<f64> = (0..80).map(|i| f64::from(i % 10)).collect();
        let t: Vec<f64> = (0..60).map(|i| f64::from(i % 5) + 3.0).collect();
        let base = BaseVector::build(&r, &t).unwrap();
        let cfg = KsConfig::new(0.05).unwrap();
        assert!(base.outcome(&cfg).rejected);
        let ctx = BoundsContext::new(&base, &cfg);
        let s = find_size(&ctx, cfg.alpha()).unwrap();
        assert!(s.k_hat <= s.k, "k_hat = {} > k = {}", s.k_hat, s.k);
        // The scan starting at k_hat performs exactly k - k_hat + 1 checks.
        assert_eq!(s.theorem1_checks, s.k - s.k_hat + 1);
    }

    #[test]
    fn binary_search_uses_logarithmic_checks() {
        let r: Vec<f64> = (0..1000).map(|i| f64::from(i % 100)).collect();
        let t: Vec<f64> = (0..1000).map(|i| f64::from(i % 50) + 30.0).collect();
        let base = BaseVector::build(&r, &t).unwrap();
        let cfg = KsConfig::new(0.05).unwrap();
        assert!(base.outcome(&cfg).rejected);
        let ctx = BoundsContext::new(&base, &cfg);
        let s = find_size(&ctx, cfg.alpha()).unwrap();
        // ceil(log2(999)) = 10, plus the initial feasibility probe.
        assert!(s.theorem2_checks <= 12, "checks = {}", s.theorem2_checks);
    }

    #[test]
    fn no_explanation_for_huge_alpha_single_point_test() {
        // With alpha far above 2/e^2 and a 2-point test set wildly different
        // from R, even removing 1 point may not reverse the test.
        let r: Vec<f64> = (0..100).map(f64::from).collect();
        let t = vec![1_000.0, 2_000.0];
        let cfg = KsConfig::new(0.9).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        assert!(base.outcome(&cfg).rejected);
        let ctx = BoundsContext::new(&base, &cfg);
        match find_size(&ctx, cfg.alpha()) {
            Err(MocheError::NoExplanation { .. }) => {}
            other => panic!("expected NoExplanation, got {other:?}"),
        }
        match find_size_no_lower_bound(&ctx, cfg.alpha()) {
            Err(MocheError::NoExplanation { .. }) => {}
            other => panic!("expected NoExplanation, got {other:?}"),
        }
    }

    #[test]
    fn size_one_when_single_outlier() {
        // T equals R except for one far outlier; removing it should suffice
        // if the outlier alone breaks the test.
        let r: Vec<f64> = (0..40).map(|i| f64::from(i % 20)).collect();
        let mut t: Vec<f64> = (0..39).map(|i| f64::from(i % 20)).collect();
        t.push(1.0e6);
        let cfg = KsConfig::new(0.05).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        // This particular construction may or may not fail; only assert when
        // it does.
        if base.outcome(&cfg).rejected {
            let ctx = BoundsContext::new(&base, &cfg);
            let s = find_size(&ctx, cfg.alpha()).unwrap();
            assert!(s.k >= 1);
        }
    }

    #[test]
    fn k_is_minimal_against_exhaustive_theorem1() {
        let (base, cfg) = paper_ctx();
        let ctx = BoundsContext::new(&base, &cfg);
        let s = find_size(&ctx, cfg.alpha()).unwrap();
        for h in 1..s.k {
            assert!(!ctx.exists_qualified(h), "h = {h} should not be qualified");
        }
        assert!(ctx.exists_qualified(s.k));
    }
}
