//! # moche-core
//!
//! A faithful, production-quality implementation of **MOCHE** — *MOst
//! CompreHensible Explanation* — from
//!
//! > Zicun Cong, Lingyang Chu, Yu Yang, Jian Pei.
//! > *Comprehensible Counterfactual Explanation on Kolmogorov-Smirnov Test.*
//! > PVLDB 14(1), VLDB 2021.
//!
//! Given a reference set `R` and a test set `T` that **fail** the two-sample
//! Kolmogorov-Smirnov test at significance level `α`, MOCHE finds the
//! smallest subset `I ⊆ T` whose removal makes the test pass, and among all
//! such smallest subsets returns the one most consistent with a
//! user-supplied preference order — the unique *most comprehensible
//! counterfactual explanation* (for `α ≤ 2/e²`).
//!
//! Where a naive search would enumerate an exponential number of subsets and
//! KS-test each one, MOCHE runs in `O(m (n + m))` worst-case time and is
//! typically dominated by an `O((n + m) log m)` Phase 1.
//!
//! ## Quick start
//!
//! ```
//! use moche_core::{Moche, PreferenceList};
//!
//! let reference = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
//! let test = vec![13.0, 13.0, 12.0, 20.0];
//!
//! // Prefer later points first (the paper's Example 6).
//! let preference = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
//!
//! let moche = Moche::new(0.3).unwrap();
//! let explanation = moche.explain(&reference, &test, &preference).unwrap();
//!
//! assert_eq!(explanation.size(), 2);          // the minimum removal size
//! assert!(explanation.outcome_after.passes()); // removal reverses the test
//! ```
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`ks`] | §3.1 | two-sample KS test, critical values, [`ks::KsConfig`] |
//! | [`ecdf`] | §3.1 | empirical CDFs and the RMSE effectiveness metric |
//! | [`base_vector`] | §4.2 | base vector `V`, cumulative counts `C_R`, `C_T` |
//! | [`cumulative`] | §4.2 | cumulative vectors of subsets and multiplicity counts |
//! | [`bounds`] | §4.3 | Ω/Γ/M, the `l`/`u` recursions, Theorems 1–2 |
//! | [`phase1`] | §4.3–4.4 | explanation-size search and the `k̂` lower bound |
//! | [`phase2`] | §5 | Algorithm 1, Theorem-3 partial-explanation checks |
//! | [`preference`] | §3.3 | preference lists and lexicographic comparison |
//! | [`brute_force`] | §3.5 | set-enumeration-tree oracle |
//! | [`moche`] | all | the high-level [`Moche`] API |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod base_vector;
pub mod batch;
pub mod bounds;
pub mod brute_force;
pub mod cumulative;
pub mod ecdf;
pub mod engine;
pub mod error;
pub mod fault;
pub mod ks;
pub mod moche;
pub mod phase1;
pub mod phase2;
pub mod preference;
pub mod ref_index;
pub mod streaming;

pub use arena::ExplanationArena;
pub use base_vector::{BaseVector, SortedReference};
pub use batch::{BatchExplainer, BatchJob, ReferenceMode, ScoreFn, ScoreIntoFn, WindowPreferences};
pub use bounds::{BoundsContext, BoundsWorkspace};
pub use cumulative::{CumulativeVector, SubsetCounts};
pub use ecdf::Ecdf;
pub use engine::ExplainEngine;
pub use error::MocheError;
pub use ks::{ks_statistic, ks_test, KsConfig, KsOutcome, ALPHA_EXISTENCE_GUARANTEE};
pub use moche::{ConstructionStrategy, Explanation, Moche, SizeSearchStrategy};
pub use phase1::SizeSearch;
pub use preference::PreferenceList;
pub use ref_index::{IncrementalRefIndex, RankSource, ReferenceIndex};
pub use streaming::{
    StreamMode, StreamResult, StreamSummary, StreamingBatchExplainer, WindowReport, WindowSource,
};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::arena::ExplanationArena;
    pub use crate::base_vector::{BaseVector, SortedReference};
    pub use crate::batch::{BatchExplainer, BatchJob};
    pub use crate::bounds::BoundsContext;
    pub use crate::ecdf::Ecdf;
    pub use crate::engine::ExplainEngine;
    pub use crate::error::MocheError;
    pub use crate::ks::{ks_test, KsConfig, KsOutcome};
    pub use crate::moche::{Explanation, Moche};
    pub use crate::preference::PreferenceList;
    pub use crate::ref_index::ReferenceIndex;
    pub use crate::streaming::StreamingBatchExplainer;
}
