//! The precomputed reference rank index: amortizing the reference side of
//! the base-vector build across many test windows.
//!
//! The drift-monitoring deployment the paper targets (Section 6.1.1) tests
//! one large reference sample `R` against thousands of small sliding
//! windows `T`. [`BaseVector::build`] re-merges `R ∪ T` per window —
//! `O(n + m)` comparisons each time even though `R` never changes.
//! A [`ReferenceIndex`] does the reference-side work once: it stores the
//! distinct reference values together with their cumulative rank counts,
//! so a per-window build only has to *splice* the window's `O(q_T)`
//! distinct values into the precomputed structure.
//!
//! [`BaseVector::build_with_index`] runs in `O(m log m)` to sort the
//! window, `O(q_T log q_R)` to locate the splice points, and copies the
//! untouched reference runs between them with `memcpy`-style chunk copies
//! instead of a per-element merge loop — the dominant `O(n)` term loses
//! its branch-per-element constant. The result is **byte-identical** to
//! [`BaseVector::build`] (enforced by `tests/proptest_indexed.rs`), so
//! every downstream phase (bounds, Phase 1, Phase 2) is oblivious to which
//! path built the base vector.

use crate::base_vector::{BaseVector, SortedReference};
use crate::error::{MocheError, SetKind};
use crate::ks::validate_finite;

/// A reference sample preprocessed for repeated base-vector builds: the
/// distinct sorted values of `R` and their cumulative counts.
///
/// Build once per reference (`O(n log n)`), then construct per-window base
/// vectors with [`BaseVector::build_with_index`]. Shareable read-only
/// across worker threads (see [`crate::batch`] and [`crate::streaming`]).
///
/// # Examples
///
/// ```
/// use moche_core::{BaseVector, ReferenceIndex};
///
/// let reference = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
/// let index = ReferenceIndex::new(&reference).unwrap();
/// assert_eq!(index.n(), 8);
/// assert_eq!(index.q_r(), 2); // distinct values 14 and 20
///
/// let test = vec![13.0, 13.0, 12.0, 20.0];
/// let indexed = BaseVector::build_with_index(&index, &test).unwrap();
/// let merged = BaseVector::build(&reference, &test).unwrap();
/// assert_eq!(indexed, merged);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceIndex {
    /// Distinct reference values, ascending.
    distinct: Vec<f64>,
    /// `cum_f64[j] = |{x in R : x <= distinct[j - 1]}|` (`cum_f64[0] = 0`),
    /// stored as `f64` so the splice can fill the [`BaseVector`] f64 plane
    /// with chunk copies instead of per-element conversions. Lossless:
    /// counts are integers `< 2^53`, and the integer consumers
    /// ([`rank`](Self::rank)) recover the exact `u64` with a cast — same
    /// argument as the `BaseVector` planes.
    cum_f64: Vec<f64>,
    /// Total reference size `n` (with multiplicities).
    n: usize,
}

impl ReferenceIndex {
    /// Validates, sorts and indexes a reference sample.
    ///
    /// # Errors
    ///
    /// Returns an error if the sample is empty or contains non-finite
    /// values.
    pub fn new(reference: &[f64]) -> Result<Self, MocheError> {
        Self::from_vec(reference.to_vec())
    }

    /// [`new`](Self::new) from an owned sample, sorting it in place —
    /// callers that already hold a `Vec` (e.g. a collected sliding window)
    /// skip the defensive copy.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn from_vec(mut reference: Vec<f64>) -> Result<Self, MocheError> {
        if reference.is_empty() {
            return Err(MocheError::EmptyReference);
        }
        validate_finite(SetKind::Reference, &reference)?;
        reference.sort_unstable_by(f64::total_cmp);
        Ok(Self::from_sorted_values(&reference))
    }

    /// Indexes an already-validated [`SortedReference`] in `O(n)`.
    pub fn from_sorted(reference: &SortedReference) -> Self {
        Self::from_sorted_values(reference.as_sorted())
    }

    fn from_sorted_values(sorted: &[f64]) -> Self {
        let mut index = Self { distinct: Vec::new(), cum_f64: Vec::new(), n: 0 };
        index.fill_from_sorted_values(sorted);
        index
    }

    /// Clears and refills every buffer from a sorted sample, retaining the
    /// allocations (the in-place rebuild path behind
    /// [`rebuild_from`](Self::rebuild_from)).
    fn fill_from_sorted_values(&mut self, sorted: &[f64]) {
        self.distinct.clear();
        self.distinct.reserve(sorted.len());
        self.cum_f64.clear();
        self.cum_f64.reserve(sorted.len() + 1);
        self.cum_f64.push(0.0f64);
        let mut i = 0usize;
        while i < sorted.len() {
            // The representative of a duplicate run is its first element in
            // total_cmp order, matching the merge in `BaseVector::build`.
            let v = sorted[i];
            let mut j = i + 1;
            while j < sorted.len() && sorted[j] <= v {
                j += 1;
            }
            self.distinct.push(v);
            self.cum_f64.push(j as f64);
            i = j;
        }
        self.n = sorted.len();
    }

    /// Rebuilds this index in place from a fresh (unsorted) reference
    /// sample, reusing every internal buffer plus the caller's sort scratch.
    /// A warm `(index, scratch)` pair re-indexes with zero heap allocations
    /// once the buffers have grown to the working size — the alarm path of
    /// a sliding-window monitor, where the reference changes per alarm.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new); on error the index is left unchanged.
    pub fn rebuild_from(
        &mut self,
        reference: &[f64],
        sort_scratch: &mut Vec<f64>,
    ) -> Result<(), MocheError> {
        if reference.is_empty() {
            return Err(MocheError::EmptyReference);
        }
        validate_finite(SetKind::Reference, reference)?;
        sort_scratch.clear();
        sort_scratch.extend_from_slice(reference);
        sort_scratch.sort_unstable_by(f64::total_cmp);
        self.fill_from_sorted_values(sort_scratch);
        Ok(())
    }

    /// Total reference size `n` (with multiplicities).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct reference values `q_R`.
    #[inline]
    pub fn q_r(&self) -> usize {
        self.distinct.len()
    }

    /// Always `false`: construction rejects empty samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.distinct.is_empty()
    }

    /// The distinct reference values, ascending.
    #[inline]
    pub fn distinct(&self) -> &[f64] {
        &self.distinct
    }

    /// The rank of `v` in the reference: `|{x in R : x <= v}|`, in
    /// `O(log q_R)`.
    pub fn rank(&self, v: f64) -> u64 {
        let pos = self.distinct.partition_point(|&u| u <= v);
        self.cum_f64[pos] as u64 // exact: counts are integers < 2^53
    }

    /// The cumulative counts as `f64` (see the field docs) — what the
    /// splice copies into the [`BaseVector`] `C_R` plane.
    #[inline]
    pub(crate) fn cum_f64(&self) -> &[f64] {
        &self.cum_f64
    }
}

impl BaseVector {
    /// Builds the base vector against a precomputed [`ReferenceIndex`],
    /// splicing the window's distinct values into the index instead of
    /// re-merging `R ∪ T`.
    ///
    /// `O(m log m + q_T log q_R)` plus chunk copies of the reference runs;
    /// the result is byte-identical to [`BaseVector::build`] on the same
    /// inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if the test sample is empty or contains non-finite
    /// values.
    pub fn build_with_index(index: &ReferenceIndex, test: &[f64]) -> Result<Self, MocheError> {
        let mut out = Self::empty();
        Self::build_with_index_into(index, test, &mut out)?;
        Ok(out)
    }

    /// [`build_with_index`](Self::build_with_index), rebuilding `out` in
    /// place. The splice writes into `out`'s existing buffers, so a caller
    /// looping over windows of similar size pays the page-fault cost of the
    /// `O(n + m)` output arrays once instead of per window — on large
    /// references that allocation dominates the construction itself.
    /// Start from [`BaseVector::empty`] (or any previous build).
    ///
    /// # Errors
    ///
    /// As for [`build_with_index`](Self::build_with_index); on error `out`
    /// is left unchanged.
    pub fn build_with_index_into(
        index: &ReferenceIndex,
        test: &[f64],
        out: &mut Self,
    ) -> Result<(), MocheError> {
        let mut sort_scratch = Vec::new();
        Self::build_with_index_into_using(index, test, out, &mut sort_scratch)
    }

    /// [`build_with_index_into`](Self::build_with_index_into) with a
    /// caller-owned sort buffer for the window: the only remaining per-call
    /// allocation of the splice (the sorted copy of `test`) is recycled, so
    /// a warm caller rebuilds base vectors with **zero** heap allocations.
    /// `sort_scratch` is an opaque scratch area; its contents are
    /// overwritten on every call.
    ///
    /// # Errors
    ///
    /// As for [`build_with_index_into`](Self::build_with_index_into); on
    /// error `out` is left unchanged.
    pub fn build_with_index_into_using(
        index: &ReferenceIndex,
        test: &[f64],
        out: &mut Self,
        sort_scratch: &mut Vec<f64>,
    ) -> Result<(), MocheError> {
        if test.is_empty() {
            return Err(MocheError::EmptyTest);
        }
        validate_finite(SetKind::Test, test)?;
        let mut buffers = out.take_buffers();
        let values = &mut buffers.values;
        let c_r_f64 = &mut buffers.c_r_f64;
        let c_t_f64 = &mut buffers.c_t_f64;
        let t_pos = &mut buffers.t_pos;
        values.clear();
        c_r_f64.clear();
        c_t_f64.clear();
        t_pos.clear();
        sort_scratch.clear();
        sort_scratch.extend_from_slice(test);
        sort_scratch.sort_unstable_by(f64::total_cmp);
        let t_sorted: &[f64] = sort_scratch;

        let distinct = index.distinct();
        let cum_f64 = index.cum_f64();
        values.reserve(distinct.len() + test.len());
        c_r_f64.reserve(distinct.len() + test.len() + 1);
        c_t_f64.reserve(distinct.len() + test.len() + 1);
        c_r_f64.push(0.0f64);
        c_t_f64.push(0.0f64);

        let mut rpos = 0usize; // next reference-distinct index to emit
        let mut consumed_t = 0u64;
        let mut gi = 0usize;
        while gi < t_sorted.len() {
            // One distinct test value per iteration; its representative is
            // the first element of the duplicate run, as in the merge.
            let tv = t_sorted[gi];
            let mut ge = gi + 1;
            while ge < t_sorted.len() && t_sorted[ge] <= tv {
                ge += 1;
            }

            // Copy the run of reference values strictly below tv as one
            // chunk: values and the C_R plane are memcpys of the
            // precomputed arrays, the C_T plane is a constant fill.
            let splice = rpos + distinct[rpos..].partition_point(|&u| u < tv);
            if splice > rpos {
                values.extend_from_slice(&distinct[rpos..splice]);
                c_r_f64.extend_from_slice(&cum_f64[rpos + 1..splice + 1]);
                c_t_f64.resize(c_t_f64.len() + (splice - rpos), consumed_t as f64);
                rpos = splice;
            }

            consumed_t += (ge - gi) as u64;
            if rpos < distinct.len() && distinct[rpos] == tv {
                // Shared value: same min-of-heads selection as the merge
                // (only observable for signed zeros).
                values.push(distinct[rpos].min(tv));
                rpos += 1;
            } else {
                values.push(tv);
            }
            c_r_f64.push(cum_f64[rpos]);
            c_t_f64.push(consumed_t as f64);
            gi = ge;
        }

        // Tail: every remaining reference value, in one chunk.
        if rpos < distinct.len() {
            let run = distinct.len() - rpos;
            values.extend_from_slice(&distinct[rpos..]);
            c_r_f64.extend_from_slice(&cum_f64[rpos + 1..]);
            c_t_f64.resize(c_t_f64.len() + run, consumed_t as f64);
        }

        t_pos.extend(test.iter().map(|&v| {
            let lt = values.partition_point(|&u| u < v);
            debug_assert!(values[lt] == v);
            lt + 1
        }));

        *out = Self::from_raw_parts(buffers, index.n(), test.len());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> (Vec<f64>, Vec<f64>) {
        (vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0], vec![13.0, 13.0, 12.0, 20.0])
    }

    #[test]
    fn index_summarizes_the_reference() {
        let (r, _) = paper_example();
        let index = ReferenceIndex::new(&r).unwrap();
        assert_eq!(index.n(), 8);
        assert_eq!(index.q_r(), 2);
        assert!(!index.is_empty());
        assert_eq!(index.distinct(), &[14.0, 20.0]);
        assert_eq!(index.rank(13.0), 0);
        assert_eq!(index.rank(14.0), 4);
        assert_eq!(index.rank(19.0), 4);
        assert_eq!(index.rank(20.0), 8);
        assert_eq!(index.rank(99.0), 8);
    }

    #[test]
    fn from_sorted_and_from_vec_match_new() {
        let (r, _) = paper_example();
        let shared = SortedReference::new(&r).unwrap();
        assert_eq!(ReferenceIndex::from_sorted(&shared), ReferenceIndex::new(&r).unwrap());
        assert_eq!(ReferenceIndex::from_vec(r.clone()).unwrap(), ReferenceIndex::new(&r).unwrap());
        assert_eq!(ReferenceIndex::from_vec(Vec::new()).unwrap_err(), MocheError::EmptyReference);
    }

    #[test]
    fn indexed_build_matches_merged_on_the_paper_example() {
        let (r, t) = paper_example();
        let index = ReferenceIndex::new(&r).unwrap();
        let merged = BaseVector::build(&r, &t).unwrap();
        let indexed = BaseVector::build_with_index(&index, &t).unwrap();
        assert_eq!(indexed, merged);
    }

    #[test]
    fn indexed_build_matches_merged_on_overlap_patterns() {
        // Every interleaving shape: test below, inside, between, equal to
        // and above the reference values, with duplicates everywhere.
        let r = vec![1.0, 1.0, 3.0, 5.0, 5.0, 5.0, 9.0];
        let index = ReferenceIndex::new(&r).unwrap();
        let tests: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],                 // all below
            vec![10.0, 11.0],               // all above
            vec![1.0, 5.0, 9.0],            // all shared
            vec![2.0, 4.0, 6.0],            // all between
            vec![0.0, 1.0, 4.0, 5.0, 12.0], // mixed
            vec![5.0, 5.0, 5.0, 5.0],       // one shared value, duplicated
            vec![3.0],                      // single shared point
            vec![-2.5],                     // single outside point
        ];
        for t in tests {
            let merged = BaseVector::build(&r, &t).unwrap();
            let indexed = BaseVector::build_with_index(&index, &t).unwrap();
            assert_eq!(indexed, merged, "test window {t:?}");
        }
    }

    #[test]
    fn indexed_build_matches_merged_with_signed_zeros() {
        let r = vec![-0.0, 0.0, 1.0];
        let index = ReferenceIndex::new(&r).unwrap();
        for t in [vec![0.0, 2.0], vec![-0.0, 2.0], vec![-0.0, 0.0]] {
            let merged = BaseVector::build(&r, &t).unwrap();
            let indexed = BaseVector::build_with_index(&index, &t).unwrap();
            assert_eq!(indexed, merged, "test window {t:?}");
            assert_eq!(
                indexed.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                merged.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "bitwise value mismatch for {t:?}"
            );
        }
    }

    #[test]
    fn rebuild_in_place_recycles_buffers_and_matches() {
        let r = vec![1.0, 1.0, 3.0, 5.0, 5.0, 5.0, 9.0];
        let index = ReferenceIndex::new(&r).unwrap();
        let mut out = BaseVector::empty();
        for t in [vec![2.0, 4.0], vec![0.0, 5.0, 12.0], vec![9.0, 9.0, 9.0]] {
            BaseVector::build_with_index_into(&index, &t, &mut out).unwrap();
            assert_eq!(out, BaseVector::build(&r, &t).unwrap(), "test window {t:?}");
        }
        // Validation errors leave the previous contents untouched.
        let before = out.clone();
        assert_eq!(
            BaseVector::build_with_index_into(&index, &[], &mut out).unwrap_err(),
            MocheError::EmptyTest
        );
        assert!(BaseVector::build_with_index_into(&index, &[f64::NAN], &mut out).is_err());
        assert_eq!(out, before);
    }

    #[test]
    fn rebuild_from_matches_fresh_index_and_recycles() {
        let mut index = ReferenceIndex::new(&[1.0, 2.0]).unwrap();
        let mut sort_scratch = Vec::new();
        let references: [&[f64]; 3] =
            [&[5.0, 1.0, 5.0, 3.0], &[-0.0, 0.0, 2.0], &[7.0, 7.0, 7.0, 7.0, 7.0]];
        for r in references {
            index.rebuild_from(r, &mut sort_scratch).unwrap();
            assert_eq!(index, ReferenceIndex::new(r).unwrap(), "reference {r:?}");
        }
        // A warm rebuild of a same-size reference must not grow any buffer.
        index.rebuild_from(&[9.0, 1.0, 4.0, 4.0, 2.0], &mut sort_scratch).unwrap();
        let caps = (index.distinct.capacity(), index.cum_f64.capacity());
        index.rebuild_from(&[8.0, 2.0, 3.0, 3.0, 1.0], &mut sort_scratch).unwrap();
        assert_eq!(
            (index.distinct.capacity(), index.cum_f64.capacity()),
            caps,
            "warm rebuild must reuse the buffers"
        );
        // Errors leave the previous contents untouched.
        let before = index.clone();
        assert_eq!(
            index.rebuild_from(&[], &mut sort_scratch).unwrap_err(),
            MocheError::EmptyReference
        );
        assert!(index.rebuild_from(&[f64::NAN], &mut sort_scratch).is_err());
        assert_eq!(index, before);
    }

    #[test]
    fn indexed_build_rejects_bad_test_input() {
        let index = ReferenceIndex::new(&[1.0, 2.0]).unwrap();
        assert_eq!(BaseVector::build_with_index(&index, &[]).unwrap_err(), MocheError::EmptyTest);
        assert!(BaseVector::build_with_index(&index, &[f64::NAN]).is_err());
    }

    #[test]
    fn index_rejects_bad_reference() {
        assert_eq!(ReferenceIndex::new(&[]).unwrap_err(), MocheError::EmptyReference);
        assert!(ReferenceIndex::new(&[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn indexed_statistic_matches_direct() {
        let r: Vec<f64> = (0..500).map(|i| f64::from(i % 23)).collect();
        let t: Vec<f64> = (0..80).map(|i| f64::from(i % 17) + 3.5).collect();
        let index = ReferenceIndex::new(&r).unwrap();
        let b = BaseVector::build_with_index(&index, &t).unwrap();
        let direct = crate::ks::ks_statistic(&r, &t).unwrap();
        assert!((b.statistic() - direct).abs() < 1e-15);
    }
}
