//! The precomputed reference rank index: amortizing the reference side of
//! the base-vector build across many test windows.
//!
//! The drift-monitoring deployment the paper targets (Section 6.1.1) tests
//! one large reference sample `R` against thousands of small sliding
//! windows `T`. [`BaseVector::build`] re-merges `R ∪ T` per window —
//! `O(n + m)` comparisons each time even though `R` never changes.
//! A [`ReferenceIndex`] does the reference-side work once: it stores the
//! distinct reference values together with their cumulative rank counts,
//! so a per-window build only has to *splice* the window's `O(q_T)`
//! distinct values into the precomputed structure.
//!
//! [`BaseVector::build_with_index`] runs in `O(m log m)` to sort the
//! window, `O(q_T log q_R)` to locate the splice points, and copies the
//! untouched reference runs between them with `memcpy`-style chunk copies
//! instead of a per-element merge loop — the dominant `O(n)` term loses
//! its branch-per-element constant. The result is **byte-identical** to
//! [`BaseVector::build`] (enforced by `tests/proptest_indexed.rs`), so
//! every downstream phase (bounds, Phase 1, Phase 2) is oblivious to which
//! path built the base vector.

use crate::base_vector::{BaseVector, SortedReference};
use crate::error::{MocheError, SetKind};
use crate::ks::validate_finite;

mod sealed {
    /// Seals [`super::RankSource`]: the splice consumes the crate-internal
    /// cumulative-count plane, which outside implementations cannot
    /// produce consistently.
    pub trait Sealed {}
}

/// A read-only *rank source* over a reference sample: the distinct sorted
/// values and their cumulative rank counts, in the exact layout the
/// base-vector splice ([`BaseVector::build_with_index`]) consumes.
///
/// [`ReferenceIndex`] is the canonical implementation (built by sorting);
/// [`IncrementalRefIndex::materialize`] produces the same view from an
/// incrementally-maintained order-statistic structure without sorting.
/// The trait is sealed: every implementation must be byte-identical to
/// `ReferenceIndex::new` on the same multiset, a contract enforced by
/// `tests/proptest_indexed.rs`.
pub trait RankSource: sealed::Sealed {
    /// Total reference size `n` (with multiplicities).
    fn n(&self) -> usize;
    /// The distinct reference values, ascending.
    fn distinct(&self) -> &[f64];
    /// The cumulative counts as `f64`; implementation detail of the splice.
    #[doc(hidden)]
    fn cum_f64(&self) -> &[f64];
}

impl sealed::Sealed for ReferenceIndex {}

impl RankSource for ReferenceIndex {
    #[inline]
    fn n(&self) -> usize {
        ReferenceIndex::n(self)
    }

    #[inline]
    fn distinct(&self) -> &[f64] {
        ReferenceIndex::distinct(self)
    }

    #[inline]
    fn cum_f64(&self) -> &[f64] {
        ReferenceIndex::cum_f64(self)
    }
}

/// A reference sample preprocessed for repeated base-vector builds: the
/// distinct sorted values of `R` and their cumulative counts.
///
/// Build once per reference (`O(n log n)`), then construct per-window base
/// vectors with [`BaseVector::build_with_index`]. Shareable read-only
/// across worker threads (see [`crate::batch`] and [`crate::streaming`]).
///
/// # Examples
///
/// ```
/// use moche_core::{BaseVector, ReferenceIndex};
///
/// let reference = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
/// let index = ReferenceIndex::new(&reference).unwrap();
/// assert_eq!(index.n(), 8);
/// assert_eq!(index.q_r(), 2); // distinct values 14 and 20
///
/// let test = vec![13.0, 13.0, 12.0, 20.0];
/// let indexed = BaseVector::build_with_index(&index, &test).unwrap();
/// let merged = BaseVector::build(&reference, &test).unwrap();
/// assert_eq!(indexed, merged);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceIndex {
    /// Distinct reference values, ascending.
    distinct: Vec<f64>,
    /// `cum_f64[j] = |{x in R : x <= distinct[j - 1]}|` (`cum_f64[0] = 0`),
    /// stored as `f64` so the splice can fill the [`BaseVector`] f64 plane
    /// with chunk copies instead of per-element conversions. Lossless:
    /// counts are integers `< 2^53`, and the integer consumers
    /// ([`rank`](Self::rank)) recover the exact `u64` with a cast — same
    /// argument as the `BaseVector` planes.
    cum_f64: Vec<f64>,
    /// Total reference size `n` (with multiplicities).
    n: usize,
}

impl ReferenceIndex {
    /// Validates, sorts and indexes a reference sample.
    ///
    /// # Errors
    ///
    /// Returns an error if the sample is empty or contains non-finite
    /// values.
    pub fn new(reference: &[f64]) -> Result<Self, MocheError> {
        Self::from_vec(reference.to_vec())
    }

    /// [`new`](Self::new) from an owned sample, sorting it in place —
    /// callers that already hold a `Vec` (e.g. a collected sliding window)
    /// skip the defensive copy.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn from_vec(mut reference: Vec<f64>) -> Result<Self, MocheError> {
        if reference.is_empty() {
            return Err(MocheError::EmptyReference);
        }
        validate_finite(SetKind::Reference, &reference)?;
        reference.sort_unstable_by(f64::total_cmp);
        Ok(Self::from_sorted_values(&reference))
    }

    /// Indexes an already-validated [`SortedReference`] in `O(n)`.
    pub fn from_sorted(reference: &SortedReference) -> Self {
        Self::from_sorted_values(reference.as_sorted())
    }

    fn from_sorted_values(sorted: &[f64]) -> Self {
        let mut index = Self { distinct: Vec::new(), cum_f64: Vec::new(), n: 0 };
        index.fill_from_sorted_values(sorted);
        index
    }

    /// Clears and refills every buffer from a sorted sample, retaining the
    /// allocations (the in-place rebuild path behind
    /// [`rebuild_from`](Self::rebuild_from)).
    fn fill_from_sorted_values(&mut self, sorted: &[f64]) {
        self.distinct.clear();
        self.distinct.reserve(sorted.len());
        self.cum_f64.clear();
        self.cum_f64.reserve(sorted.len() + 1);
        self.cum_f64.push(0.0f64);
        let mut i = 0usize;
        while i < sorted.len() {
            // The representative of a duplicate run is its first element in
            // total_cmp order, matching the merge in `BaseVector::build`.
            let v = sorted[i];
            let mut j = i + 1;
            while j < sorted.len() && sorted[j] <= v {
                j += 1;
            }
            self.distinct.push(v);
            self.cum_f64.push(j as f64);
            i = j;
        }
        self.n = sorted.len();
    }

    /// Rebuilds this index in place from a fresh (unsorted) reference
    /// sample, reusing every internal buffer plus the caller's sort scratch.
    /// A warm `(index, scratch)` pair re-indexes with zero heap allocations
    /// once the buffers have grown to the working size — the alarm path of
    /// a sliding-window monitor, where the reference changes per alarm.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new); on error the index is left unchanged.
    pub fn rebuild_from(
        &mut self,
        reference: &[f64],
        sort_scratch: &mut Vec<f64>,
    ) -> Result<(), MocheError> {
        if reference.is_empty() {
            return Err(MocheError::EmptyReference);
        }
        validate_finite(SetKind::Reference, reference)?;
        sort_scratch.clear();
        sort_scratch.extend_from_slice(reference);
        sort_scratch.sort_unstable_by(f64::total_cmp);
        self.fill_from_sorted_values(sort_scratch);
        Ok(())
    }

    /// Total reference size `n` (with multiplicities).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct reference values `q_R`.
    #[inline]
    pub fn q_r(&self) -> usize {
        self.distinct.len()
    }

    /// Always `false`: construction rejects empty samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.distinct.is_empty()
    }

    /// The distinct reference values, ascending.
    #[inline]
    pub fn distinct(&self) -> &[f64] {
        &self.distinct
    }

    /// The rank of `v` in the reference: `|{x in R : x <= v}|`, in
    /// `O(log q_R)`.
    pub fn rank(&self, v: f64) -> u64 {
        let pos = self.distinct.partition_point(|&u| u <= v);
        self.cum_f64[pos] as u64 // exact: counts are integers < 2^53
    }

    /// The cumulative counts as `f64` (see the field docs) — what the
    /// splice copies into the [`BaseVector`] `C_R` plane.
    #[inline]
    pub(crate) fn cum_f64(&self) -> &[f64] {
        &self.cum_f64
    }
}

impl BaseVector {
    /// Builds the base vector against a precomputed [`RankSource`]
    /// (canonically a [`ReferenceIndex`]), splicing the window's distinct
    /// values into the source instead of re-merging `R ∪ T`.
    ///
    /// `O(m log m + q_T log q_R)` plus chunk copies of the reference runs;
    /// the result is byte-identical to [`BaseVector::build`] on the same
    /// inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if the test sample is empty or contains non-finite
    /// values.
    pub fn build_with_index<S: RankSource + ?Sized>(
        index: &S,
        test: &[f64],
    ) -> Result<Self, MocheError> {
        let mut out = Self::empty();
        Self::build_with_index_into(index, test, &mut out)?;
        Ok(out)
    }

    /// [`build_with_index`](Self::build_with_index), rebuilding `out` in
    /// place. The splice writes into `out`'s existing buffers, so a caller
    /// looping over windows of similar size pays the page-fault cost of the
    /// `O(n + m)` output arrays once instead of per window — on large
    /// references that allocation dominates the construction itself.
    /// Start from [`BaseVector::empty`] (or any previous build).
    ///
    /// # Errors
    ///
    /// As for [`build_with_index`](Self::build_with_index); on error `out`
    /// is left unchanged.
    pub fn build_with_index_into<S: RankSource + ?Sized>(
        index: &S,
        test: &[f64],
        out: &mut Self,
    ) -> Result<(), MocheError> {
        let mut sort_scratch = Vec::new();
        Self::build_with_index_into_using(index, test, out, &mut sort_scratch)
    }

    /// [`build_with_index_into`](Self::build_with_index_into) with a
    /// caller-owned sort buffer for the window: the only remaining per-call
    /// allocation of the splice (the sorted copy of `test`) is recycled, so
    /// a warm caller rebuilds base vectors with **zero** heap allocations.
    /// `sort_scratch` is an opaque scratch area; its contents are
    /// overwritten on every call.
    ///
    /// # Errors
    ///
    /// As for [`build_with_index_into`](Self::build_with_index_into); on
    /// error `out` is left unchanged.
    pub fn build_with_index_into_using<S: RankSource + ?Sized>(
        index: &S,
        test: &[f64],
        out: &mut Self,
        sort_scratch: &mut Vec<f64>,
    ) -> Result<(), MocheError> {
        if test.is_empty() {
            return Err(MocheError::EmptyTest);
        }
        validate_finite(SetKind::Test, test)?;
        let mut buffers = out.take_buffers();
        let values = &mut buffers.values;
        let c_r_f64 = &mut buffers.c_r_f64;
        let c_t_f64 = &mut buffers.c_t_f64;
        let t_pos = &mut buffers.t_pos;
        values.clear();
        c_r_f64.clear();
        c_t_f64.clear();
        t_pos.clear();
        sort_scratch.clear();
        sort_scratch.extend_from_slice(test);
        sort_scratch.sort_unstable_by(f64::total_cmp);
        let t_sorted: &[f64] = sort_scratch;

        let distinct = index.distinct();
        let cum_f64 = index.cum_f64();
        values.reserve(distinct.len() + test.len());
        c_r_f64.reserve(distinct.len() + test.len() + 1);
        c_t_f64.reserve(distinct.len() + test.len() + 1);
        c_r_f64.push(0.0f64);
        c_t_f64.push(0.0f64);

        let mut rpos = 0usize; // next reference-distinct index to emit
        let mut consumed_t = 0u64;
        let mut gi = 0usize;
        while gi < t_sorted.len() {
            // One distinct test value per iteration; its representative is
            // the first element of the duplicate run, as in the merge.
            let tv = t_sorted[gi];
            let mut ge = gi + 1;
            while ge < t_sorted.len() && t_sorted[ge] <= tv {
                ge += 1;
            }

            // Copy the run of reference values strictly below tv as one
            // chunk: values and the C_R plane are memcpys of the
            // precomputed arrays, the C_T plane is a constant fill.
            let splice = rpos + distinct[rpos..].partition_point(|&u| u < tv);
            if splice > rpos {
                values.extend_from_slice(&distinct[rpos..splice]);
                c_r_f64.extend_from_slice(&cum_f64[rpos + 1..splice + 1]);
                c_t_f64.resize(c_t_f64.len() + (splice - rpos), consumed_t as f64);
                rpos = splice;
            }

            consumed_t += (ge - gi) as u64;
            if rpos < distinct.len() && distinct[rpos] == tv {
                // Shared value: same min-of-heads selection as the merge
                // (only observable for signed zeros).
                values.push(distinct[rpos].min(tv));
                rpos += 1;
            } else {
                values.push(tv);
            }
            c_r_f64.push(cum_f64[rpos]);
            c_t_f64.push(consumed_t as f64);
            gi = ge;
        }

        // Tail: every remaining reference value, in one chunk.
        if rpos < distinct.len() {
            let run = distinct.len() - rpos;
            values.extend_from_slice(&distinct[rpos..]);
            c_r_f64.extend_from_slice(&cum_f64[rpos + 1..]);
            c_t_f64.resize(c_t_f64.len() + run, consumed_t as f64);
        }

        t_pos.extend(test.iter().map(|&v| {
            let lt = values.partition_point(|&u| u < v);
            debug_assert!(values[lt] == v);
            lt + 1
        }));

        *out = Self::from_raw_parts(buffers, index.n(), test.len());
        Ok(())
    }
}

/// Treap arena index.
type Idx = u32;
const NIL: Idx = u32::MAX;

/// One distinct key of the order-statistic multiset: a value (keyed by
/// `total_cmp`, so `-0.0` and `0.0` are separate nodes until
/// materialization collapses them like the sorted merge does) and its
/// multiplicity.
#[derive(Debug, Clone)]
struct MultisetNode {
    value: f64,
    /// Live occurrences of this exact key (node is freed at 0).
    count: u32,
    priority: u64,
    left: Idx,
    right: Idx,
}

/// An incrementally-maintained [`RankSource`]: the reference side of a
/// sliding-window monitor, updated in `O(log w)` per slide and
/// materialized into a [`ReferenceIndex`] **without sorting** at alarm
/// time.
///
/// [`ReferenceIndex::rebuild_from`] re-sorts the whole window on every
/// alarm — `O(w log w)` even though consecutive alarms differ by a handful
/// of slides. This structure keeps the order statistics live instead: a
/// treap-backed multiset absorbs each slide as one [`remove`](Self::remove)
/// plus one [`insert`](Self::insert) (`O(log w)` expected, allocation-free
/// once warm thanks to a node free list), and
/// [`materialize`](Self::materialize) walks it in order (`O(q_R)`, no
/// comparison sort) to refill a cached [`ReferenceIndex`] the base-vector
/// splice consumes unchanged. The materialized index is **byte-identical**
/// to [`ReferenceIndex::new`] on the same multiset — including signed-zero
/// representatives and duplicate collapsing — a property pinned by
/// `tests/proptest_indexed.rs`.
///
/// # Examples
///
/// ```
/// use moche_core::{IncrementalRefIndex, ReferenceIndex};
///
/// let mut live = IncrementalRefIndex::new();
/// for v in [5.0, 1.0, 5.0, 3.0] {
///     live.insert(v);
/// }
/// assert_eq!(live.materialize().unwrap(), &ReferenceIndex::new(&[5.0, 1.0, 5.0, 3.0]).unwrap());
///
/// // One window slide: O(log w), no sort anywhere.
/// assert!(live.remove(1.0));
/// live.insert(7.0);
/// assert_eq!(live.materialize().unwrap(), &ReferenceIndex::new(&[5.0, 5.0, 3.0, 7.0]).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalRefIndex {
    nodes: Vec<MultisetNode>,
    free: Vec<Idx>,
    root: Idx,
    rng_state: u64,
    /// Total size with multiplicities.
    len: usize,
    /// Scratch stack for the iterative in-order materialization walk.
    traversal: Vec<Idx>,
    /// The materialized view, refilled in place when stale.
    cache: ReferenceIndex,
    /// Whether `cache` reflects the current multiset.
    stale: bool,
    /// Updates since the cache was last exact, chronological. A short gap
    /// re-materializes by *patching* the cached arrays (`O(q)` memmoves,
    /// cache-friendly) instead of re-walking the whole tree.
    pending: Vec<PendingDelta>,
    /// Whether `cache` + `pending` still reconstructs the multiset. False
    /// until the first full walk, or after `pending` overflows.
    cache_synced: bool,
}

/// One recorded multiset update awaiting application to the cached view.
#[derive(Debug, Clone, Copy)]
struct PendingDelta {
    value: f64,
    /// `true` for an insert, `false` for a remove.
    added: bool,
}

/// How many pending updates [`IncrementalRefIndex::materialize`] will
/// patch into the cached arrays before falling back to the full in-order
/// walk. Each patch is an `O(q)` sequential pass (a few µs at `q = 10k`);
/// the walk is an `O(q)` *pointer-chasing* pass (hundreds of µs at the
/// same size), so the break-even sits far above typical alarm gaps.
const PATCH_LIMIT: usize = 64;

impl Default for IncrementalRefIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalRefIndex {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            rng_state: 0x5EED_0D15 | 1,
            len: 0,
            traversal: Vec::new(),
            cache: ReferenceIndex { distinct: Vec::new(), cum_f64: Vec::new(), n: 0 },
            stale: true,
            pending: Vec::new(),
            cache_synced: false,
        }
    }

    /// An empty multiset with every internal buffer sized for `capacity`
    /// elements, so a monitor holding at most `capacity` values never
    /// allocates after construction — not even on a worst-case treap shape.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut index = Self::new();
        index.nodes.reserve(capacity);
        index.free.reserve(capacity);
        index.traversal.reserve(capacity);
        index.cache.distinct.reserve(capacity + 1);
        index.cache.cum_f64.reserve(capacity + 2);
        index.pending.reserve(PATCH_LIMIT);
        index
    }

    /// Total number of stored values, with multiplicities.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the multiset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the multiset, keeping every allocation for reuse.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
        self.stale = true;
        self.pending.clear();
        self.cache_synced = false;
    }

    /// Records one update for the patch-based re-materialization, spilling
    /// to "full walk needed" when the gap since the last materialization
    /// grows past [`PATCH_LIMIT`].
    fn record(&mut self, value: f64, added: bool) {
        self.stale = true;
        if self.cache_synced {
            if self.pending.len() < PATCH_LIMIT {
                self.pending.push(PendingDelta { value, added });
            } else {
                self.pending.clear();
                self.cache_synced = false;
            }
        }
    }

    fn next_priority(&mut self) -> u64 {
        // SplitMix64 (public domain, Steele et al.).
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn alloc(&mut self, value: f64) -> Idx {
        let priority = self.next_priority();
        let node = MultisetNode { value, count: 1, priority, left: NIL, right: NIL };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as Idx
        }
    }

    /// Splits `t` into (< value, >= value) in `total_cmp` order.
    fn split_lt(&mut self, t: Idx, value: f64) -> (Idx, Idx) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].value.total_cmp(&value) == std::cmp::Ordering::Less {
            let right = self.nodes[t as usize].right;
            let (a, b) = self.split_lt(right, value);
            self.nodes[t as usize].right = a;
            (t, b)
        } else {
            let left = self.nodes[t as usize].left;
            let (a, b) = self.split_lt(left, value);
            self.nodes[t as usize].left = b;
            (a, t)
        }
    }

    /// Splits `t` into (<= value, > value) in `total_cmp` order.
    fn split_le(&mut self, t: Idx, value: f64) -> (Idx, Idx) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].value.total_cmp(&value) != std::cmp::Ordering::Greater {
            let right = self.nodes[t as usize].right;
            let (a, b) = self.split_le(right, value);
            self.nodes[t as usize].right = a;
            (t, b)
        } else {
            let left = self.nodes[t as usize].left;
            let (a, b) = self.split_le(left, value);
            self.nodes[t as usize].left = b;
            (a, t)
        }
    }

    fn merge(&mut self, a: Idx, b: Idx) -> Idx {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].priority >= self.nodes[b as usize].priority {
            let ar = self.nodes[a as usize].right;
            let merged = self.merge(ar, b);
            self.nodes[a as usize].right = merged;
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let merged = self.merge(a, bl);
            self.nodes[b as usize].left = merged;
            b
        }
    }

    /// Inserts one occurrence of `value`: `O(log w)` expected, and
    /// allocation-free once the node arena has grown to the working set.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values (the multiset is left unchanged —
    /// validation happens before any structural mutation).
    pub fn insert(&mut self, value: f64) {
        assert!(value.is_finite(), "reference values must be finite");
        let root = self.root;
        let (a, bc) = self.split_lt(root, value);
        let (b, c) = self.split_le(bc, value);
        let b = if b == NIL {
            self.alloc(value)
        } else {
            debug_assert!(self.nodes[b as usize].value.total_cmp(&value).is_eq());
            self.nodes[b as usize].count += 1;
            b
        };
        let left = self.merge(a, b);
        self.root = self.merge(left, c);
        self.len += 1;
        self.record(value, true);
    }

    /// Removes one occurrence of `value` (matched bit-exactly under
    /// `total_cmp`, so `-0.0` only removes a stored `-0.0`). Returns
    /// `false` — leaving the multiset unchanged — if the value is absent.
    pub fn remove(&mut self, value: f64) -> bool {
        let root = self.root;
        let (a, bc) = self.split_lt(root, value);
        let (b, c) = self.split_le(bc, value);
        let found = b != NIL;
        let b = if found {
            let node = &mut self.nodes[b as usize];
            node.count -= 1;
            if node.count == 0 {
                self.free.push(b);
                NIL
            } else {
                b
            }
        } else {
            NIL
        };
        let left = self.merge(a, b);
        self.root = self.merge(left, c);
        if found {
            self.len -= 1;
            self.record(value, false);
        }
        found
    }

    /// Live occurrences of the exact (`total_cmp`) key `value`: `O(log w)`.
    fn count_of(&self, value: f64) -> u32 {
        let mut cur = self.root;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            match value.total_cmp(&node.value) {
                std::cmp::Ordering::Less => cur = node.left,
                std::cmp::Ordering::Greater => cur = node.right,
                std::cmp::Ordering::Equal => return node.count,
            }
        }
        0
    }

    /// Applies one recorded update to the cached arrays, preserving the
    /// sorted-build semantics exactly: run counts via the cumulative plane,
    /// and the duplicate-run *representative* (the first key in `total_cmp`
    /// order — observable only for signed zeros) via an `O(log w)` treap
    /// probe when a `-0.0` joins or leaves a zero run.
    fn apply_delta(&mut self, delta: PendingDelta) {
        let v = delta.value;
        // Numeric comparison intentionally: ±0.0 share one run, and within
        // the representative-ordered `distinct` array, numeric `<` finds
        // the run for any probe bit pattern.
        let pos = self.cache.distinct.partition_point(|&u| u < v);
        if delta.added {
            if pos < self.cache.distinct.len() && self.cache.distinct[pos] == v {
                // Existing run: bump every later cumulative count...
                for c in &mut self.cache.cum_f64[pos + 1..] {
                    *c += 1.0;
                }
                // ...and adopt -0.0 as representative over 0.0.
                if v.total_cmp(&self.cache.distinct[pos]).is_lt() {
                    self.cache.distinct[pos] = v;
                }
            } else {
                self.cache.distinct.insert(pos, v);
                let below = self.cache.cum_f64[pos];
                self.cache.cum_f64.insert(pos + 1, below + 1.0);
                for c in &mut self.cache.cum_f64[pos + 2..] {
                    *c += 1.0;
                }
            }
        } else {
            debug_assert!(
                pos < self.cache.distinct.len() && self.cache.distinct[pos] == v,
                "recorded removes name a live run"
            );
            let run = (self.cache.cum_f64[pos + 1] - self.cache.cum_f64[pos]) as u64;
            if run <= 1 {
                self.cache.distinct.remove(pos);
                self.cache.cum_f64.remove(pos + 1);
                for c in &mut self.cache.cum_f64[pos + 1..] {
                    *c -= 1.0;
                }
            } else {
                for c in &mut self.cache.cum_f64[pos + 1..] {
                    *c -= 1.0;
                }
                // A -0.0 leaving a mixed zero run may hand the
                // representative back to 0.0 (the treap — already fully
                // updated — knows whether any -0.0 remains).
                if v.to_bits() == (-0.0f64).to_bits()
                    && self.cache.distinct[pos].to_bits() == (-0.0f64).to_bits()
                    && self.count_of(-0.0) == 0
                {
                    self.cache.distinct[pos] = 0.0;
                }
            }
        }
    }

    /// The current multiset as a [`ReferenceIndex`], byte-identical to
    /// [`ReferenceIndex::new`] over the same values — with **no sort**
    /// anywhere. Repeated calls between updates are `O(1)`; after a short
    /// gap of `k` updates (up to the internal patch limit of 64) the
    /// cached arrays are
    /// *patched* in `O(k · q_R)` sequential passes (a handful of µs for a
    /// one-slide alarm gap); a longer gap falls back to the `O(q_R)`
    /// in-order tree walk. A warm structure materializes with zero heap
    /// allocations either way.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::EmptyReference`] when the multiset is empty
    /// (an empty reference has no valid index).
    pub fn materialize(&mut self) -> Result<&ReferenceIndex, MocheError> {
        if self.len == 0 {
            return Err(MocheError::EmptyReference);
        }
        if self.stale {
            if self.cache_synced {
                // Chronological replay keeps intermediate states exact
                // (a run deleted by one delta may be re-created by the
                // next), so the patched arrays equal a fresh walk.
                for i in 0..self.pending.len() {
                    let delta = self.pending[i];
                    self.apply_delta(delta);
                }
                self.pending.clear();
                self.cache.n = self.len;
            } else {
                self.walk_into_cache();
                self.cache_synced = true;
            }
            self.stale = false;
        }
        Ok(&self.cache)
    }

    /// Full re-materialization: the in-order treap walk, refilling the
    /// cached arrays from scratch.
    fn walk_into_cache(&mut self) {
        let nodes = &self.nodes;
        let cache = &mut self.cache;
        let stack = &mut self.traversal;
        cache.distinct.clear();
        cache.cum_f64.clear();
        cache.cum_f64.push(0.0f64);
        stack.clear();
        let mut total = 0u64;
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = nodes[cur as usize].left;
            }
            // lint:allow(panic): the outer loop condition (`cur != NIL ||
            // !stack.is_empty()`) plus the descent loop guarantee a frame
            let node = &nodes[stack.pop().expect("stack non-empty") as usize];
            total += u64::from(node.count);
            match cache.distinct.last() {
                // `total_cmp`-adjacent keys comparing equal (`-0.0`
                // then `0.0`) collapse into one distinct run whose
                // representative is the first key — exactly the merge
                // rule of `ReferenceIndex::new`.
                Some(&last) if last == node.value => {
                    // lint:allow(panic): `distinct.last()` just matched Some,
                    // and `cum_f64` grows in lockstep with `distinct`
                    *cache.cum_f64.last_mut().expect("cum non-empty") = total as f64;
                }
                _ => {
                    cache.distinct.push(node.value);
                    cache.cum_f64.push(total as f64);
                }
            }
            cur = node.right;
        }
        cache.n = total as usize;
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> (Vec<f64>, Vec<f64>) {
        (vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0], vec![13.0, 13.0, 12.0, 20.0])
    }

    #[test]
    fn index_summarizes_the_reference() {
        let (r, _) = paper_example();
        let index = ReferenceIndex::new(&r).unwrap();
        assert_eq!(index.n(), 8);
        assert_eq!(index.q_r(), 2);
        assert!(!index.is_empty());
        assert_eq!(index.distinct(), &[14.0, 20.0]);
        assert_eq!(index.rank(13.0), 0);
        assert_eq!(index.rank(14.0), 4);
        assert_eq!(index.rank(19.0), 4);
        assert_eq!(index.rank(20.0), 8);
        assert_eq!(index.rank(99.0), 8);
    }

    #[test]
    fn from_sorted_and_from_vec_match_new() {
        let (r, _) = paper_example();
        let shared = SortedReference::new(&r).unwrap();
        assert_eq!(ReferenceIndex::from_sorted(&shared), ReferenceIndex::new(&r).unwrap());
        assert_eq!(ReferenceIndex::from_vec(r.clone()).unwrap(), ReferenceIndex::new(&r).unwrap());
        assert_eq!(ReferenceIndex::from_vec(Vec::new()).unwrap_err(), MocheError::EmptyReference);
    }

    #[test]
    fn indexed_build_matches_merged_on_the_paper_example() {
        let (r, t) = paper_example();
        let index = ReferenceIndex::new(&r).unwrap();
        let merged = BaseVector::build(&r, &t).unwrap();
        let indexed = BaseVector::build_with_index(&index, &t).unwrap();
        assert_eq!(indexed, merged);
    }

    #[test]
    fn indexed_build_matches_merged_on_overlap_patterns() {
        // Every interleaving shape: test below, inside, between, equal to
        // and above the reference values, with duplicates everywhere.
        let r = vec![1.0, 1.0, 3.0, 5.0, 5.0, 5.0, 9.0];
        let index = ReferenceIndex::new(&r).unwrap();
        let tests: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],                 // all below
            vec![10.0, 11.0],               // all above
            vec![1.0, 5.0, 9.0],            // all shared
            vec![2.0, 4.0, 6.0],            // all between
            vec![0.0, 1.0, 4.0, 5.0, 12.0], // mixed
            vec![5.0, 5.0, 5.0, 5.0],       // one shared value, duplicated
            vec![3.0],                      // single shared point
            vec![-2.5],                     // single outside point
        ];
        for t in tests {
            let merged = BaseVector::build(&r, &t).unwrap();
            let indexed = BaseVector::build_with_index(&index, &t).unwrap();
            assert_eq!(indexed, merged, "test window {t:?}");
        }
    }

    #[test]
    fn indexed_build_matches_merged_with_signed_zeros() {
        let r = vec![-0.0, 0.0, 1.0];
        let index = ReferenceIndex::new(&r).unwrap();
        for t in [vec![0.0, 2.0], vec![-0.0, 2.0], vec![-0.0, 0.0]] {
            let merged = BaseVector::build(&r, &t).unwrap();
            let indexed = BaseVector::build_with_index(&index, &t).unwrap();
            assert_eq!(indexed, merged, "test window {t:?}");
            assert_eq!(
                indexed.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                merged.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "bitwise value mismatch for {t:?}"
            );
        }
    }

    #[test]
    fn rebuild_in_place_recycles_buffers_and_matches() {
        let r = vec![1.0, 1.0, 3.0, 5.0, 5.0, 5.0, 9.0];
        let index = ReferenceIndex::new(&r).unwrap();
        let mut out = BaseVector::empty();
        for t in [vec![2.0, 4.0], vec![0.0, 5.0, 12.0], vec![9.0, 9.0, 9.0]] {
            BaseVector::build_with_index_into(&index, &t, &mut out).unwrap();
            assert_eq!(out, BaseVector::build(&r, &t).unwrap(), "test window {t:?}");
        }
        // Validation errors leave the previous contents untouched.
        let before = out.clone();
        assert_eq!(
            BaseVector::build_with_index_into(&index, &[], &mut out).unwrap_err(),
            MocheError::EmptyTest
        );
        assert!(BaseVector::build_with_index_into(&index, &[f64::NAN], &mut out).is_err());
        assert_eq!(out, before);
    }

    #[test]
    fn rebuild_from_matches_fresh_index_and_recycles() {
        let mut index = ReferenceIndex::new(&[1.0, 2.0]).unwrap();
        let mut sort_scratch = Vec::new();
        let references: [&[f64]; 3] =
            [&[5.0, 1.0, 5.0, 3.0], &[-0.0, 0.0, 2.0], &[7.0, 7.0, 7.0, 7.0, 7.0]];
        for r in references {
            index.rebuild_from(r, &mut sort_scratch).unwrap();
            assert_eq!(index, ReferenceIndex::new(r).unwrap(), "reference {r:?}");
        }
        // A warm rebuild of a same-size reference must not grow any buffer.
        index.rebuild_from(&[9.0, 1.0, 4.0, 4.0, 2.0], &mut sort_scratch).unwrap();
        let caps = (index.distinct.capacity(), index.cum_f64.capacity());
        index.rebuild_from(&[8.0, 2.0, 3.0, 3.0, 1.0], &mut sort_scratch).unwrap();
        assert_eq!(
            (index.distinct.capacity(), index.cum_f64.capacity()),
            caps,
            "warm rebuild must reuse the buffers"
        );
        // Errors leave the previous contents untouched.
        let before = index.clone();
        assert_eq!(
            index.rebuild_from(&[], &mut sort_scratch).unwrap_err(),
            MocheError::EmptyReference
        );
        assert!(index.rebuild_from(&[f64::NAN], &mut sort_scratch).is_err());
        assert_eq!(index, before);
    }

    #[test]
    fn indexed_build_rejects_bad_test_input() {
        let index = ReferenceIndex::new(&[1.0, 2.0]).unwrap();
        assert_eq!(BaseVector::build_with_index(&index, &[]).unwrap_err(), MocheError::EmptyTest);
        assert!(BaseVector::build_with_index(&index, &[f64::NAN]).is_err());
    }

    #[test]
    fn index_rejects_bad_reference() {
        assert_eq!(ReferenceIndex::new(&[]).unwrap_err(), MocheError::EmptyReference);
        assert!(ReferenceIndex::new(&[1.0, f64::INFINITY]).is_err());
    }

    /// Bit-level equality, distinguishing `-0.0` from `0.0` where derived
    /// `PartialEq` would not.
    fn assert_bits_eq(a: &ReferenceIndex, b: &ReferenceIndex, ctx: &str) {
        assert_eq!(a.n(), b.n(), "{ctx}: n");
        assert_eq!(
            a.distinct().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.distinct().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{ctx}: distinct bits"
        );
        assert_eq!(a.cum_f64(), b.cum_f64(), "{ctx}: cumulative counts");
    }

    #[test]
    fn incremental_matches_sorted_construction() {
        let mut live = IncrementalRefIndex::new();
        let values = [5.0, 1.0, 5.0, 3.0, 1.0, 1.0, -2.5, 5.0];
        for (i, &v) in values.iter().enumerate() {
            live.insert(v);
            assert_eq!(live.len(), i + 1);
            assert_bits_eq(
                live.materialize().unwrap(),
                &ReferenceIndex::new(&values[..=i]).unwrap(),
                &format!("after {} inserts", i + 1),
            );
        }
    }

    #[test]
    fn incremental_slides_match_rebuilds() {
        // A sliding window over a repeating series: every slide is one
        // remove + one insert, and the materialized index must equal a
        // from-scratch sorted build of the window at every step.
        let series: Vec<f64> = (0..120).map(|i| ((i * 29) % 13) as f64 * 0.5).collect();
        let w = 30;
        let mut live = IncrementalRefIndex::with_capacity(w);
        for &v in &series[..w] {
            live.insert(v);
        }
        for step in 0..(series.len() - w) {
            assert!(live.remove(series[step]), "step {step}: oldest value present");
            live.insert(series[step + w]);
            assert_bits_eq(
                live.materialize().unwrap(),
                &ReferenceIndex::new(&series[step + 1..step + 1 + w]).unwrap(),
                &format!("step {step}"),
            );
        }
    }

    #[test]
    fn incremental_collapses_signed_zeros_like_the_sort() {
        for values in [
            vec![-0.0, 0.0, 1.0],
            vec![0.0, -0.0, 1.0],
            vec![0.0, 0.0, -0.0],
            vec![-0.0, -0.0],
            vec![1.0, 0.0, -1.0, -0.0, 0.0],
        ] {
            let mut live = IncrementalRefIndex::new();
            for &v in &values {
                live.insert(v);
            }
            assert_bits_eq(
                live.materialize().unwrap(),
                &ReferenceIndex::new(&values).unwrap(),
                &format!("values {values:?}"),
            );
        }
        // Removal is bit-exact: taking out the -0.0 leaves the 0.0 run.
        let mut live = IncrementalRefIndex::new();
        live.insert(-0.0);
        live.insert(0.0);
        assert!(live.remove(-0.0));
        assert_bits_eq(live.materialize().unwrap(), &ReferenceIndex::new(&[0.0]).unwrap(), "0.0");
    }

    #[test]
    fn incremental_remove_of_absent_value_is_a_clean_no_op() {
        let mut live = IncrementalRefIndex::new();
        live.insert(1.0);
        live.insert(2.0);
        assert!(!live.remove(3.0));
        assert!(!live.remove(f64::NAN), "NaN is never stored");
        assert!(!live.remove(-0.0), "only a positive zero would match bit-exactly");
        assert_eq!(live.len(), 2);
        assert_bits_eq(
            live.materialize().unwrap(),
            &ReferenceIndex::new(&[1.0, 2.0]).unwrap(),
            "unchanged",
        );
    }

    #[test]
    fn incremental_empty_and_clear() {
        let mut live = IncrementalRefIndex::new();
        assert!(live.is_empty());
        assert_eq!(live.materialize().unwrap_err(), MocheError::EmptyReference);
        live.insert(4.0);
        assert!(!live.is_empty());
        live.clear();
        assert!(live.is_empty());
        assert_eq!(live.len(), 0);
        assert_eq!(live.materialize().unwrap_err(), MocheError::EmptyReference);
        // Reusable after a clear.
        live.insert(7.0);
        assert_bits_eq(live.materialize().unwrap(), &ReferenceIndex::new(&[7.0]).unwrap(), "reuse");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn incremental_insert_rejects_non_finite() {
        IncrementalRefIndex::new().insert(f64::INFINITY);
    }

    #[test]
    fn incremental_patches_and_walks_agree_across_gap_sizes() {
        // Materialization has two paths — delta patching for short update
        // gaps, the full in-order walk past PATCH_LIMIT — and both must be
        // byte-identical to a sorted build at any gap size straddling the
        // threshold.
        let series: Vec<f64> = (0..600).map(|i| ((i * 31) % 47) as f64 * 0.5).collect();
        let w = 120;
        for gap in [1usize, 2, 7, PATCH_LIMIT - 1, PATCH_LIMIT, PATCH_LIMIT + 1, 3 * PATCH_LIMIT] {
            let mut live = IncrementalRefIndex::with_capacity(w);
            for &v in &series[..w] {
                live.insert(v);
            }
            live.materialize().unwrap();
            let mut step = 0;
            while step + gap <= series.len() - w {
                for _ in 0..gap {
                    assert!(live.remove(series[step]));
                    live.insert(series[step + w]);
                    step += 1;
                }
                assert_bits_eq(
                    live.materialize().unwrap(),
                    &ReferenceIndex::new(&series[step..step + w]).unwrap(),
                    &format!("gap {gap}, step {step}"),
                );
            }
        }
    }

    #[test]
    fn incremental_patching_handles_signed_zero_representatives() {
        // The patch path's only observable subtlety: the ±0.0 run's
        // representative must flip exactly like a fresh sorted build's.
        let mut live = IncrementalRefIndex::new();
        live.insert(0.0);
        live.insert(1.0);
        live.materialize().unwrap(); // sync the cache, then patch from here
        live.insert(-0.0); // -0.0 joins: representative flips to -0.0
        assert_bits_eq(
            live.materialize().unwrap(),
            &ReferenceIndex::new(&[0.0, 1.0, -0.0]).unwrap(),
            "after -0.0 joins",
        );
        assert!(live.remove(-0.0)); // last -0.0 leaves: back to 0.0
        assert_bits_eq(
            live.materialize().unwrap(),
            &ReferenceIndex::new(&[0.0, 1.0]).unwrap(),
            "after -0.0 leaves",
        );
        // Mixed run keeps -0.0 while one of two -0.0s remains.
        live.insert(-0.0);
        live.insert(-0.0);
        live.materialize().unwrap();
        assert!(live.remove(-0.0));
        assert_bits_eq(
            live.materialize().unwrap(),
            &ReferenceIndex::new(&[0.0, 1.0, -0.0]).unwrap(),
            "one -0.0 still present",
        );
        // Remove-then-reinsert of a whole run inside one patch gap.
        assert!(live.remove(1.0));
        live.insert(1.0);
        live.insert(2.0);
        assert_bits_eq(
            live.materialize().unwrap(),
            &ReferenceIndex::new(&[0.0, 1.0, -0.0, 2.0]).unwrap(),
            "run deleted and re-created in one gap",
        );
    }

    #[test]
    fn incremental_is_allocation_stable_once_warm() {
        // Slide a window long enough to reach the working set, then check
        // that further slides + materializations never grow any buffer.
        let series: Vec<f64> = (0..300).map(|i| ((i * 17) % 23) as f64).collect();
        let w = 40;
        let mut live = IncrementalRefIndex::with_capacity(w);
        for &v in &series[..w] {
            live.insert(v);
        }
        for step in 0..100 {
            assert!(live.remove(series[step]));
            live.insert(series[step + w]);
            live.materialize().unwrap();
        }
        let caps = (
            live.nodes.capacity(),
            live.free.capacity(),
            live.traversal.capacity(),
            live.cache.distinct.capacity(),
            live.cache.cum_f64.capacity(),
        );
        for step in 100..(series.len() - w) {
            assert!(live.remove(series[step]));
            live.insert(series[step + w]);
            live.materialize().unwrap();
        }
        let after = (
            live.nodes.capacity(),
            live.free.capacity(),
            live.traversal.capacity(),
            live.cache.distinct.capacity(),
            live.cache.cum_f64.capacity(),
        );
        assert_eq!(caps, after, "warm slides must not grow any internal buffer");
    }

    #[test]
    fn incremental_index_feeds_the_splice() {
        // The materialized view is a first-class RankSource: the splice
        // consumes it exactly like a sorted-construction index.
        let r = vec![1.0, 1.0, 3.0, 5.0, 5.0, 5.0, 9.0];
        let t = vec![0.0, 1.0, 4.0, 5.0, 12.0];
        let mut live = IncrementalRefIndex::new();
        for &v in &r {
            live.insert(v);
        }
        let via_live = BaseVector::build_with_index(live.materialize().unwrap(), &t).unwrap();
        assert_eq!(via_live, BaseVector::build(&r, &t).unwrap());
    }

    #[test]
    fn indexed_statistic_matches_direct() {
        let r: Vec<f64> = (0..500).map(|i| f64::from(i % 23)).collect();
        let t: Vec<f64> = (0..80).map(|i| f64::from(i % 17) + 3.5).collect();
        let index = ReferenceIndex::new(&r).unwrap();
        let b = BaseVector::build_with_index(&index, &t).unwrap();
        let direct = crate::ks::ks_statistic(&r, &t).unwrap();
        assert!((b.statistic() - direct).abs() < 1e-15);
    }
}
