//! Deterministic fault injection for the parallel and streaming paths.
//!
//! Crash-safety claims are only worth what their tests can provoke: "a
//! worker panic is isolated to its window" needs a way to *make* a worker
//! panic at window `k`, and "a torn checkpoint write is rejected on resume"
//! needs a writer that actually tears. External failpoint crates exist, but
//! this workspace vendors its dependencies, so the registry is hand-rolled:
//! a process-global map from **failpoint names** to armed fault
//! specifications, consulted by [`failpoint`] calls compiled into the
//! pipeline's interesting seams.
//!
//! The entire mechanism sits behind the `fault-injection` cargo feature.
//! Without it (the default), [`failpoint`] is an inlined `None` — zero
//! branches, zero atomics, zero cost in production builds — and the arming
//! API does not exist, so no production code path can depend on it.
//!
//! ## Injection points
//!
//! | Name | Location | Faults honoured |
//! |---|---|---|
//! | `batch.worker` | [`crate::batch::BatchExplainer`] per-job execution | `Panic` |
//! | `stream.worker` | [`crate::streaming::StreamingBatchExplainer`] per-window execution | `Panic` |
//! | `stream.feeder` | streaming feeder loop, before each window fill | `Panic`, `Error` (stop feeding) |
//! | `stream.reorder` | in-order delivery loop, before ring insertion | `Panic` |
//! | `stream.arena_return` | delivery loop, before returning a consumed arena | `Error` (drop instead of return) |
//! | `batch2d.worker` | `moche_multidim::batch2d::Batch2dExplainer` per-window execution | `Panic` |
//! | `stream2d.worker` | `moche_multidim::stream2d::Stream2dExplainer` per-window execution | `Panic` |
//! | `stream2d.feeder` | 2-D streaming feeder loop, before each window fill | `Panic`, `Error` (stop feeding) |
//! | `checkpoint.write` | `moche_stream` snapshot writer | `Error` (fail the write), `TruncateWrite` (torn file) |
//! | `serve.accept` | `moche serve` connection accept loop | `Error` (simulated accept failure; the daemon logs and keeps listening) |
//! | `serve.shard_worker` | fleet shard push path (`moche_stream` `FleetShard::push`) | `Panic` (caught; the series is quarantined, the shard survives) |
//! | `serve.checkpoint` | fleet shard checkpoint writer | `Error` (fail the write), `TruncateWrite` (torn shard file at the final path) |
//! | `serve.read` | `moche serve` supervised connection read loop, before each socket read | `Error` (treated as a mid-frame stall: the connection is evicted and counted as a stalled read, deterministically, without waiting out a real deadline) |
//! | `serve.write` | `moche serve` reply writer, before each reply | `Error` (treated as a stalled write: the connection is evicted and counted, as if the peer never drained its receive buffer) |
//! | `serve.drain` | `moche serve` graceful-drain close of each surviving connection | `Error` (logged `DRAIN failpoint` marker; the drain proceeds — proves chaos tests exercise the real drain path) |
//!
//! Arming is deterministic: a spec fires on specific *hit counts* of its
//! point (`skip` hits pass through first, then `times` hits fire), so a
//! test can target exactly window `k` of a run and nothing else.
//!
//! ## Examples
//!
//! ```
//! # #[cfg(feature = "fault-injection")] {
//! use moche_core::fault;
//!
//! // Panic on the 3rd hit (skip 2, fire once) of a named point.
//! fault::arm("example.point", fault::Fault::Panic, 2, 1);
//! for i in 0..5 {
//!     let hit = std::panic::catch_unwind(|| fault::failpoint("example.point"));
//!     assert_eq!(hit.is_err(), i == 2, "only the 3rd hit panics");
//! }
//! fault::disarm("example.point");
//! # }
//! ```

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the failpoint (inside [`failpoint`] itself), with a message
    /// naming the point — exercises the `catch_unwind` isolation paths.
    Panic,
    /// Report a recoverable failure: [`failpoint`] returns
    /// `Some(Fault::Error)` and the call site degrades the way the real
    /// failure would (a disconnected channel, a failed write, ...).
    Error,
    /// For write-shaped points: persist only the first `n` bytes, then
    /// report success — a torn/truncated write, as left by a crash or a
    /// full disk, for the *reader's* rejection tests.
    TruncateWrite(usize),
}

/// Extracts a human-readable message from a caught panic payload (the
/// `Box<dyn Any>` that [`std::panic::catch_unwind`] returns). Shared by
/// every worker-isolation site so `WorkerPanicked` errors carry the
/// original `panic!` text when there is one.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(feature = "fault-injection")]
mod registry {
    use super::Fault;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// One armed failpoint: pass `skip` hits through, then fire `remaining`
    /// times, then fall dormant (but stay registered until disarmed).
    struct Armed {
        fault: Fault,
        skip: usize,
        remaining: usize,
    }

    fn registry() -> &'static Mutex<HashMap<String, Armed>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Arms `name`: the next `skip` hits pass through untouched, the
    /// following `times` hits fire `fault`, later hits pass through again.
    /// Re-arming an already-armed point replaces its spec.
    pub fn arm(name: &str, fault: Fault, skip: usize, times: usize) {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), Armed { fault, skip, remaining: times });
    }

    /// Disarms `name` (a no-op if it was never armed).
    pub fn disarm(name: &str) {
        registry().lock().unwrap_or_else(PoisonError::into_inner).remove(name);
    }

    /// The hit path: consult the registry, honour skip/times accounting,
    /// and panic in place for [`Fault::Panic`].
    pub fn failpoint(name: &str) -> Option<Fault> {
        // Panic-armed points unwind through this lock; recover the poison
        // so the registry keeps serving the rest of the test run.
        let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let armed = map.get_mut(name)?;
        if armed.skip > 0 {
            armed.skip -= 1;
            return None;
        }
        if armed.remaining == 0 {
            return None;
        }
        armed.remaining -= 1;
        let fault = armed.fault;
        drop(map); // never panic while holding the registry lock
        if fault == Fault::Panic {
            // lint:allow(panic): panicking *is* the armed fault — test-only
            // (the registry only compiles under `fault-injection`)
            panic!("injected panic at failpoint '{name}'");
        }
        Some(fault)
    }
}

#[cfg(feature = "fault-injection")]
pub use registry::{arm, disarm, failpoint};

/// The production shape of [`failpoint`]: nothing is ever armed, so every
/// point is an inlined `None`.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn failpoint(_name: &str) -> Option<Fault> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_message_handles_common_payload_shapes() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(boxed.as_ref()), "static str");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(boxed.as_ref()), "owned");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(boxed.as_ref()), "non-string panic payload");
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn disabled_failpoints_never_fire() {
        assert_eq!(failpoint("anything"), None);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn skip_and_times_accounting_is_deterministic() {
        // A name no other test uses: tests in this binary share the
        // process-global registry.
        let name = "fault.unit.accounting";
        arm(name, Fault::Error, 2, 2);
        let fired: Vec<bool> = (0..6).map(|_| failpoint(name).is_some()).collect();
        assert_eq!(fired, [false, false, true, true, false, false]);
        disarm(name);
        assert_eq!(failpoint(name), None);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn truncate_spec_carries_its_length() {
        let name = "fault.unit.truncate";
        arm(name, Fault::TruncateWrite(17), 0, 1);
        assert_eq!(failpoint(name), Some(Fault::TruncateWrite(17)));
        assert_eq!(failpoint(name), None, "times = 1 means one firing");
        disarm(name);
    }
}
