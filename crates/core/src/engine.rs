//! The reusable explain engine: MOCHE's hot path with caller-owned scratch.
//!
//! [`Moche::explain`](crate::Moche::explain) is a convenient one-shot API,
//! but each call heap-allocates the Phase-2 working set (two bound vectors,
//! the `ū`/`d` selection state and a propagation buffer). On the workloads
//! the ROADMAP targets — one reference distribution monitored against
//! thousands of test windows, explanations served on every drift alarm —
//! those transient allocations are pure overhead: the buffers have the same
//! shape every time.
//!
//! [`ExplainEngine`] owns a [`BoundsWorkspace`] and reuses it across
//!
//! * every Phase-1 `h` probe (the Theorem-2 binary search and the Theorem-1
//!   linear scan are already streaming and `O(1)`-space),
//! * the Phase-2 bound computation and construction
//!   ([`phase2::construct_with`]), and
//! * all alphas of a [`size_profile`](ExplainEngine::size_profile) sweep
//!   (one [`BoundsContext`] reconfigured per level).
//!
//! In steady state an engine performs no heap allocations besides the
//! returned [`Explanation`] itself — and with a caller-owned
//! [`ExplanationArena`] (the `*_in` method family) not even that: the
//! output vectors are written into recycled storage the caller hands back
//! after consuming each explanation. Results are **byte-identical** to the
//! one-shot paths — a property enforced by `tests/proptest_engine.rs` and
//! `tests/proptest_indexed.rs`.
//!
//! For many `(R, T)` pairs at once, see [`crate::batch`], which runs one
//! engine per worker thread.

use crate::arena::ExplanationArena;
use crate::base_vector::{BaseVector, SortedReference};
use crate::bounds::{BoundsContext, BoundsWorkspace};
use crate::cumulative::SubsetCounts;
use crate::error::MocheError;
use crate::ks::KsConfig;
use crate::moche::{ConstructionStrategy, Explanation, SizeProfile, SizeSearchStrategy};
use crate::phase1::{self, SizeSearch};
use crate::phase2;
use crate::preference::PreferenceList;
use crate::ref_index::RankSource;
#[cfg(doc)]
use crate::ref_index::ReferenceIndex;

/// A MOCHE explainer with reusable scratch buffers.
///
/// Construct once, call [`explain`](Self::explain) many times. The engine is
/// cheap to create but only pays off when reused; for one-shot calls,
/// [`crate::Moche`] is equivalent.
///
/// # Examples
///
/// ```
/// use moche_core::{ExplainEngine, PreferenceList};
///
/// let reference = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
/// let mut engine = ExplainEngine::new(0.3).unwrap();
/// for test in [vec![13.0, 13.0, 12.0, 20.0], vec![12.0, 13.0, 13.0, 20.0]] {
///     let pref = PreferenceList::identity(test.len());
///     let e = engine.explain(&reference, &test, &pref).unwrap();
///     assert_eq!(e.size(), 2);
///     assert!(e.outcome_after.passes());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ExplainEngine {
    cfg: KsConfig,
    size_search: SizeSearchStrategy,
    construction: ConstructionStrategy,
    ws: BoundsWorkspace,
    /// Recycled output of the indexed base-vector splice: steady-state
    /// [`explain_with_index`](Self::explain_with_index) calls rebuild it in
    /// place instead of reallocating the `O(n + m)` arrays per window.
    base_scratch: Option<BaseVector>,
    /// Recycled sort buffer for the window side of the indexed splice.
    sort_scratch: Vec<f64>,
    /// Recycled per-value removal counts for the after-removal verification.
    counts_scratch: SubsetCounts,
}

impl ExplainEngine {
    /// Creates an engine for significance level `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        Ok(Self::with_config(KsConfig::new(alpha)?))
    }

    /// Creates an engine from an existing [`KsConfig`].
    pub fn with_config(cfg: KsConfig) -> Self {
        Self {
            cfg,
            size_search: SizeSearchStrategy::default(),
            construction: ConstructionStrategy::default(),
            ws: BoundsWorkspace::new(),
            base_scratch: None,
            sort_scratch: Vec::new(),
            counts_scratch: SubsetCounts::empty(0),
        }
    }

    /// Selects the Phase-1 size-search strategy.
    #[must_use]
    pub fn size_search(mut self, strategy: SizeSearchStrategy) -> Self {
        self.size_search = strategy;
        self
    }

    /// Selects the Phase-2 construction strategy. The default
    /// [`ConstructionStrategy::Incremental`] is the zero-allocation
    /// workspace path; [`ConstructionStrategy::Reference`] runs the
    /// paper-faithful allocating construction (identical results).
    #[must_use]
    pub fn construction(mut self, strategy: ConstructionStrategy) -> Self {
        self.construction = strategy;
        self
    }

    /// The KS configuration in use.
    #[inline]
    pub fn config(&self) -> &KsConfig {
        &self.cfg
    }

    /// Explains the failed KS test between `reference` and `test` under
    /// `preference`, reusing this engine's scratch buffers.
    ///
    /// # Errors
    ///
    /// As for [`crate::Moche::explain`].
    pub fn explain(
        &mut self,
        reference: &[f64],
        test: &[f64],
        preference: &PreferenceList,
    ) -> Result<Explanation, MocheError> {
        self.explain_in(reference, test, preference, &mut ExplanationArena::new())
    }

    /// [`explain`](Self::explain) writing the output into storage recycled
    /// through `arena` (see [`ExplanationArena`]): the returned explanation
    /// owns the arena's buffers; hand them back with
    /// [`ExplanationArena::recycle`] once it has been consumed.
    ///
    /// # Errors
    ///
    /// As for [`explain`](Self::explain).
    pub fn explain_in(
        &mut self,
        reference: &[f64],
        test: &[f64],
        preference: &PreferenceList,
        arena: &mut ExplanationArena,
    ) -> Result<Explanation, MocheError> {
        let base = BaseVector::build(reference, test)?;
        self.explain_base_in(&base, test, preference, arena)
    }

    /// [`explain`](Self::explain) against a pre-sorted shared reference:
    /// skips the per-call sort and validation of `R`. This is the
    /// shared-reference fast path (one `R`, many `T` windows).
    ///
    /// # Errors
    ///
    /// As for [`explain`](Self::explain).
    pub fn explain_with_reference(
        &mut self,
        reference: &SortedReference,
        test: &[f64],
        preference: &PreferenceList,
    ) -> Result<Explanation, MocheError> {
        self.explain_with_reference_in(reference, test, preference, &mut ExplanationArena::new())
    }

    /// [`explain_with_reference`](Self::explain_with_reference) writing the
    /// output into storage recycled through `arena`.
    ///
    /// # Errors
    ///
    /// As for [`explain`](Self::explain).
    pub fn explain_with_reference_in(
        &mut self,
        reference: &SortedReference,
        test: &[f64],
        preference: &PreferenceList,
        arena: &mut ExplanationArena,
    ) -> Result<Explanation, MocheError> {
        let base = BaseVector::build_with_reference(reference, test)?;
        self.explain_base_in(&base, test, preference, arena)
    }

    /// [`explain`](Self::explain) against a precomputed [`RankSource`]
    /// (canonically a [`ReferenceIndex`], or an
    /// [`crate::ref_index::IncrementalRefIndex`]'s materialized view): the
    /// per-window base vector is spliced into the source
    /// ([`BaseVector::build_with_index`]) instead of re-merging `R ∪ T`.
    /// This is the amortized path for one `R` against many windows.
    ///
    /// # Errors
    ///
    /// As for [`explain`](Self::explain).
    pub fn explain_with_index<S: RankSource + ?Sized>(
        &mut self,
        index: &S,
        test: &[f64],
        preference: &PreferenceList,
    ) -> Result<Explanation, MocheError> {
        self.explain_with_index_in(index, test, preference, &mut ExplanationArena::new())
    }

    /// [`explain_with_index`](Self::explain_with_index) writing the output
    /// into storage recycled through `arena`. This is the fully
    /// allocation-free steady state: base vector, bounds, sort buffer,
    /// removal counts *and* the output vectors are all reused, so a warm
    /// `(engine, arena)` pair explains with zero heap allocations — the
    /// per-window hot path of [`crate::streaming`].
    ///
    /// # Errors
    ///
    /// As for [`explain`](Self::explain).
    pub fn explain_with_index_in<S: RankSource + ?Sized>(
        &mut self,
        index: &S,
        test: &[f64],
        preference: &PreferenceList,
        arena: &mut ExplanationArena,
    ) -> Result<Explanation, MocheError> {
        let mut base = self.base_scratch.take().unwrap_or_else(BaseVector::empty);
        let mut sort_scratch = std::mem::take(&mut self.sort_scratch);
        let result =
            BaseVector::build_with_index_into_using(index, test, &mut base, &mut sort_scratch)
                .and_then(|()| self.explain_base_in(&base, test, preference, arena));
        self.sort_scratch = sort_scratch;
        self.base_scratch = Some(base);
        result
    }

    /// Phase 1 only, against a precomputed [`RankSource`]: the
    /// explanation *size* `k` of the failed test, without constructing the
    /// explanation itself. This is the `size_only` monitoring fast path —
    /// "how bad is the drift" without paying for Phase 2.
    ///
    /// # Errors
    ///
    /// As for [`explain`](Self::explain), except preference errors cannot
    /// occur (no preference is involved).
    pub fn size_with_index<S: RankSource + ?Sized>(
        &mut self,
        index: &S,
        test: &[f64],
    ) -> Result<SizeSearch, MocheError> {
        let mut base = self.base_scratch.take().unwrap_or_else(BaseVector::empty);
        let mut sort_scratch = std::mem::take(&mut self.sort_scratch);
        let result =
            BaseVector::build_with_index_into_using(index, test, &mut base, &mut sort_scratch)
                .and_then(|()| self.size_base(&base));
        self.sort_scratch = sort_scratch;
        self.base_scratch = Some(base);
        result
    }

    /// Phase 1 over an already-built base vector.
    pub(crate) fn size_base(&self, base: &BaseVector) -> Result<SizeSearch, MocheError> {
        self.size_checked(base, &base.outcome(&self.cfg))
    }

    /// Phase 1 under an already-computed before-removal outcome.
    fn size_checked(
        &self,
        base: &BaseVector,
        outcome_before: &crate::ks::KsOutcome,
    ) -> Result<SizeSearch, MocheError> {
        if outcome_before.passes() {
            return Err(MocheError::TestAlreadyPasses {
                statistic: outcome_before.statistic,
                threshold: outcome_before.threshold,
            });
        }
        let ctx = BoundsContext::new(base, &self.cfg);
        self.find_size_with_strategy(&ctx, self.cfg.alpha())
    }

    /// Phase 1 under this engine's configured size-search strategy.
    fn find_size_with_strategy(
        &self,
        ctx: &BoundsContext<'_>,
        alpha: f64,
    ) -> Result<SizeSearch, MocheError> {
        match self.size_search {
            SizeSearchStrategy::Wavefront => phase1::find_size_wavefront(ctx, alpha),
            SizeSearchStrategy::LowerBounded => phase1::find_size(ctx, alpha),
            SizeSearchStrategy::NoLowerBound => phase1::find_size_no_lower_bound(ctx, alpha),
        }
    }

    /// The core flow over an already-built base vector, writing the output
    /// into storage taken from `arena`. On error the storage is returned to
    /// the arena, so a failed window never degrades later ones back to
    /// allocating.
    pub(crate) fn explain_base_in(
        &mut self,
        base: &BaseVector,
        test: &[f64],
        preference: &PreferenceList,
        arena: &mut ExplanationArena,
    ) -> Result<Explanation, MocheError> {
        preference.check_length(base.m())?;
        let outcome_before = base.outcome(&self.cfg);
        let phase1 = self.size_checked(base, &outcome_before)?;

        let (mut indices, mut values) = arena.take();
        let constructed = match self.construction {
            ConstructionStrategy::Incremental => phase2::construct_into(
                base,
                &self.cfg,
                phase1.k,
                preference.as_order(),
                &mut self.ws,
                &mut indices,
            ),
            ConstructionStrategy::Reference => {
                phase2::construct_reference(base, &self.cfg, phase1.k, preference.as_order()).map(
                    |(selected, stats)| {
                        indices.clear();
                        indices.extend_from_slice(&selected);
                        stats
                    },
                )
            }
        };
        let phase2 = match constructed {
            Ok(stats) => stats,
            Err(e) => {
                arena.put(indices, values);
                return Err(e);
            }
        };

        self.counts_scratch.refill_from_test_indices(base, &indices);
        let outcome_after = base.outcome_after_removal(self.counts_scratch.as_slice(), &self.cfg);
        values.reserve(indices.len());
        values.extend(indices.iter().map(|&i| test[i]));

        Ok(Explanation {
            indices,
            values,
            phase1,
            phase2,
            outcome_before,
            outcome_after,
            n: base.n(),
            m: base.m(),
            q: base.q(),
        })
    }

    /// Sensitivity sweep sharing one base vector *and* one bounds context
    /// across all levels (cf. [`crate::Moche::size_profile`]).
    ///
    /// # Errors
    ///
    /// Input-validation errors fail the whole call; per-level outcomes are
    /// reported inside the vector.
    pub fn size_profile(
        &mut self,
        reference: &[f64],
        test: &[f64],
        alphas: &[f64],
    ) -> Result<SizeProfile, MocheError> {
        let base = BaseVector::build(reference, test)?;
        let mut ctx = BoundsContext::new(&base, &self.cfg);
        let mut out = Vec::with_capacity(alphas.len());
        for &alpha in alphas {
            let cfg = match KsConfig::new(alpha) {
                Ok(c) => c.with_eps(self.cfg.eps()),
                Err(e) => {
                    out.push((alpha, Err(e)));
                    continue;
                }
            };
            let outcome = base.outcome(&cfg);
            if outcome.passes() {
                out.push((
                    alpha,
                    Err(MocheError::TestAlreadyPasses {
                        statistic: outcome.statistic,
                        threshold: outcome.threshold,
                    }),
                ));
                continue;
            }
            ctx.set_config(&cfg);
            out.push((alpha, self.find_size_with_strategy(&ctx, alpha)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moche::{ConstructionStrategy, Moche};
    use crate::ref_index::ReferenceIndex;

    fn paper_setup() -> (Vec<f64>, Vec<f64>) {
        (vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0], vec![13.0, 13.0, 12.0, 20.0])
    }

    #[test]
    fn engine_matches_one_shot_paths() {
        let (r, t) = paper_setup();
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let mut engine = ExplainEngine::new(0.3).unwrap();
        let moche = Moche::new(0.3).unwrap();
        let reference = moche.construction(ConstructionStrategy::Reference);
        for _ in 0..3 {
            let a = engine.explain(&r, &t, &pref).unwrap();
            let b = moche.explain(&r, &t, &pref).unwrap();
            let c = reference.explain(&r, &t, &pref).unwrap();
            assert_eq!(a.indices(), b.indices());
            assert_eq!(a.indices(), c.indices());
            assert_eq!(a.phase1, b.phase1);
            assert_eq!(a.outcome_after, b.outcome_after);
        }
    }

    #[test]
    fn engine_shared_reference_matches_direct() {
        let (r, t) = paper_setup();
        let shared = SortedReference::new(&r).unwrap();
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let mut engine = ExplainEngine::new(0.3).unwrap();
        let direct = engine.explain(&r, &t, &pref).unwrap();
        let via_shared = engine.explain_with_reference(&shared, &t, &pref).unwrap();
        assert_eq!(direct, via_shared);
    }

    #[test]
    fn engine_indexed_matches_direct() {
        let (r, t) = paper_setup();
        let index = ReferenceIndex::new(&r).unwrap();
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let mut engine = ExplainEngine::new(0.3).unwrap();
        let direct = engine.explain(&r, &t, &pref).unwrap();
        let via_index = engine.explain_with_index(&index, &t, &pref).unwrap();
        assert_eq!(direct, via_index);
    }

    #[test]
    fn engine_size_only_matches_full_phase1() {
        let (r, t) = paper_setup();
        let index = ReferenceIndex::new(&r).unwrap();
        let mut engine = ExplainEngine::new(0.3).unwrap();
        let size = engine.size_with_index(&index, &t).unwrap();
        let full = engine.explain(&r, &t, &PreferenceList::new(vec![3, 2, 1, 0]).unwrap()).unwrap();
        assert_eq!(size, full.phase1);
        // Passing tests surface the same error as the explain path.
        match engine.size_with_index(&index, &r) {
            Err(MocheError::TestAlreadyPasses { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn engine_surfaces_errors_like_moche() {
        let (r, t) = paper_setup();
        let mut engine = ExplainEngine::new(0.3).unwrap();
        match engine.explain(&r, &r, &PreferenceList::identity(r.len())) {
            Err(MocheError::TestAlreadyPasses { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        match engine.explain(&r, &t, &PreferenceList::identity(3)) {
            Err(MocheError::PreferenceLengthMismatch { expected: 4, actual: 3 }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // A hard error must not poison the engine for later calls.
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        assert_eq!(engine.explain(&r, &t, &pref).unwrap().size(), 2);
    }

    #[test]
    fn engine_size_profile_matches_moche() {
        let r: Vec<f64> = (0..200).map(|i| f64::from(i % 10)).collect();
        let t: Vec<f64> = (0..150).map(|i| f64::from(i % 10) + 4.0).collect();
        let alphas = [0.01, 0.05, 0.1, 0.2, 2.0];
        let moche = Moche::new(0.05).unwrap();
        let mut engine = ExplainEngine::new(0.05).unwrap();
        let a = moche.size_profile(&r, &t, &alphas).unwrap();
        let b = engine.size_profile(&r, &t, &alphas).unwrap();
        assert_eq!(a.len(), b.len());
        for ((alpha_a, res_a), (alpha_b, res_b)) in a.iter().zip(&b) {
            assert_eq!(alpha_a, alpha_b);
            match (res_a, res_b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(x), Err(y)) => assert_eq!(x, y),
                other => panic!("profile mismatch at alpha {alpha_a}: {other:?}"),
            }
        }
    }
}
