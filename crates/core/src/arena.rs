//! Caller-owned recycled storage for explanation outputs.
//!
//! [`crate::engine::ExplainEngine`] reuses every *internal* buffer across
//! calls, but each returned [`Explanation`] still owns two freshly
//! allocated vectors (the selected indices and their values). On the
//! streaming workloads the ROADMAP targets — explanations produced,
//! consumed and dropped millions of times — those two allocations are the
//! last per-window heap traffic on the hot path.
//!
//! An [`ExplanationArena`] closes the loop: the engine's `*_in` methods
//! ([`explain_in`](crate::engine::ExplainEngine::explain_in) and friends)
//! write the output into storage taken from the arena, and the caller hands
//! the buffers back with [`recycle`](ExplanationArena::recycle) once the
//! explanation has been consumed. A warm `(engine, arena)` pair explains
//! with **zero** heap allocations — a property gated by the
//! `BENCH_core.json` perf suite and pinned byte-identical to the
//! allocating path by `tests/proptest_indexed.rs`.
//!
//! ```
//! use moche_core::{ExplainEngine, ExplanationArena, PreferenceList, ReferenceIndex};
//!
//! let reference = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
//! let index = ReferenceIndex::new(&reference).unwrap();
//! let mut engine = ExplainEngine::new(0.3).unwrap();
//! let mut arena = ExplanationArena::new();
//! for test in [vec![13.0, 13.0, 12.0, 20.0], vec![12.0, 13.0, 13.0, 20.0]] {
//!     let pref = PreferenceList::identity(test.len());
//!     let e = engine.explain_with_index_in(&index, &test, &pref, &mut arena).unwrap();
//!     assert_eq!(e.size(), 2);
//!     arena.recycle(e); // hand the output buffers back for the next call
//! }
//! ```

use crate::moche::Explanation;

/// Recycled output storage for [`Explanation`]s.
///
/// The arena is plain data (two vectors); moving it between threads is
/// cheap, which is how [`crate::streaming`] ships consumed output buffers
/// back to its worker threads.
#[derive(Debug, Clone, Default)]
pub struct ExplanationArena {
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl ExplanationArena {
    /// An arena with no storage yet; the first explanation written through
    /// it allocates, later ones reuse whatever was recycled.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena primed with a consumed explanation's buffers (shorthand for
    /// `new` + [`recycle`](Self::recycle)).
    pub fn recycled_from(explanation: Explanation) -> Self {
        let mut arena = Self::new();
        arena.recycle(explanation);
        arena
    }

    /// Whether the arena currently holds reusable storage. `false` on a
    /// fresh arena, or after its storage moved into an explanation: the
    /// next explanation written through it will allocate.
    pub fn has_storage(&self) -> bool {
        self.indices.capacity() > 0 || self.values.capacity() > 0
    }

    /// Reclaims a consumed explanation's output buffers so the next
    /// explanation written through this arena reuses them.
    pub fn recycle(&mut self, explanation: Explanation) {
        let Explanation { mut indices, mut values, .. } = explanation;
        indices.clear();
        values.clear();
        self.indices = indices;
        self.values = values;
    }

    /// Moves the storage out (cleared), leaving the arena empty.
    pub(crate) fn take(&mut self) -> (Vec<usize>, Vec<f64>) {
        let mut indices = std::mem::take(&mut self.indices);
        let mut values = std::mem::take(&mut self.values);
        indices.clear();
        values.clear();
        (indices, values)
    }

    /// Returns storage taken with [`take`](Self::take) that was not
    /// consumed (the engine's error paths).
    pub(crate) fn put(&mut self, indices: Vec<usize>, values: Vec<f64>) {
        self.indices = indices;
        self.values = values;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExplainEngine;
    use crate::preference::PreferenceList;
    use crate::ref_index::ReferenceIndex;

    #[test]
    fn recycle_retains_capacity() {
        let r = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
        let t = vec![13.0, 13.0, 12.0, 20.0];
        let index = ReferenceIndex::new(&r).unwrap();
        let mut engine = ExplainEngine::new(0.3).unwrap();
        let mut arena = ExplanationArena::new();
        assert!(!arena.has_storage());
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let e = engine.explain_with_index_in(&index, &t, &pref, &mut arena).unwrap();
        assert!(!arena.has_storage(), "buffers moved into the explanation");
        let cap = e.indices().len();
        arena.recycle(e);
        assert!(arena.has_storage());
        let (indices, values) = arena.take();
        assert!(indices.capacity() >= cap);
        assert!(values.capacity() >= cap);
        assert!(indices.is_empty() && values.is_empty());
    }

    #[test]
    fn recycled_from_is_new_plus_recycle() {
        let r = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
        let t = vec![13.0, 13.0, 12.0, 20.0];
        let index = ReferenceIndex::new(&r).unwrap();
        let mut engine = ExplainEngine::new(0.3).unwrap();
        let pref = PreferenceList::identity(t.len());
        let mut arena = ExplanationArena::new();
        let e = engine.explain_with_index_in(&index, &t, &pref, &mut arena).unwrap();
        let primed = ExplanationArena::recycled_from(e);
        assert!(primed.has_storage());
    }

    #[test]
    fn error_paths_keep_the_storage() {
        let r = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
        let t = vec![13.0, 13.0, 12.0, 20.0];
        let index = ReferenceIndex::new(&r).unwrap();
        let mut engine = ExplainEngine::new(0.3).unwrap();
        let mut arena = ExplanationArena::new();
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let e = engine.explain_with_index_in(&index, &t, &pref, &mut arena).unwrap();
        arena.recycle(e);
        // A passing window errors before touching the arena.
        assert!(engine.explain_with_index_in(&index, &r, &pref, &mut arena).is_err());
        assert!(arena.has_storage(), "an error must not leak the recycled storage");
        // And the arena still works afterwards.
        let e = engine.explain_with_index_in(&index, &t, &pref, &mut arena).unwrap();
        assert_eq!(e.size(), 2);
    }
}
