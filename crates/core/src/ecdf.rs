//! Empirical cumulative distribution functions.

/// An empirical cumulative distribution function (ECDF) over a finite
/// multiset of real values.
///
/// `F(x)` is the fraction of sample points that are `<= x`. Evaluation is
/// `O(log n)` via binary search over the sorted sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from an arbitrary (unsorted) sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN. Use the validating
    /// entry points in [`crate::ks`] when handling untrusted input.
    pub fn new(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "ECDF requires a non-empty sample");
        assert!(values.iter().all(|v| !v.is_nan()), "ECDF sample must not contain NaN");
        let mut sorted = values.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        Self { sorted }
    }

    /// Builds an ECDF from a sample that is already sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the sample is not sorted.
    pub fn from_sorted(sorted: Vec<f64>) -> Self {
        assert!(!sorted.is_empty(), "ECDF requires a non-empty sample");
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "sample must be sorted");
        Self { sorted }
    }

    /// Number of sample points.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for a constructed `Ecdf`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The underlying sorted sample.
    #[inline]
    pub fn sample(&self) -> &[f64] {
        &self.sorted
    }

    /// Number of sample points `<= x`.
    #[inline]
    pub fn count_le(&self, x: f64) -> usize {
        self.sorted.partition_point(|&v| v <= x)
    }

    /// Evaluates `F(x)`, the fraction of sample points `<= x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.count_le(x) as f64 / self.sorted.len() as f64
    }

    /// The root-mean-square error between two ECDFs evaluated over the union
    /// of their supports, as used by the paper's effectiveness metric
    /// (Section 6.3):
    ///
    /// ```text
    /// RMSE = sqrt( Σ_{x in A ∪ B} (F_A(x) - F_B(x))^2 / |A ∪ B| )
    /// ```
    ///
    /// where the union is a multiset union (duplicates counted).
    pub fn rmse(&self, other: &Ecdf) -> f64 {
        let total = self.len() + other.len();
        let mut sum = 0.0f64;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            let d = self.eval(x) - other.eval(x);
            sum += d * d;
        }
        (sum / total as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_function_semantics() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(1.5), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn from_sorted_equals_new() {
        let raw = vec![3.0, 1.0, 2.0];
        let a = Ecdf::new(&raw);
        let b = Ecdf::from_sorted(vec![1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn count_le_handles_duplicates() {
        let e = Ecdf::new(&[5.0; 10]);
        assert_eq!(e.count_le(4.9), 0);
        assert_eq!(e.count_le(5.0), 10);
    }

    #[test]
    fn rmse_of_identical_samples_is_zero() {
        let e = Ecdf::new(&[1.0, 4.0, 9.0]);
        assert_eq!(e.rmse(&e), 0.0);
    }

    #[test]
    fn rmse_is_symmetric() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]);
        let b = Ecdf::new(&[2.0, 3.0, 4.0, 5.0]);
        let ab = a.rmse(&b);
        let ba = b.rmse(&a);
        assert!((ab - ba).abs() < 1e-15);
        assert!(ab > 0.0);
    }

    #[test]
    fn rmse_of_disjoint_samples_is_large() {
        let a = Ecdf::new(&[0.0, 1.0]);
        let b = Ecdf::new(&[10.0, 11.0]);
        // At the points of a, F_a in {0.5, 1.0}, F_b = 0; at points of b both 1 or (1, 0.5).
        assert!(a.rmse(&b) > 0.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        let _ = Ecdf::new(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        let _ = Ecdf::new(&[1.0, f64::NAN]);
    }
}
