//! Error types for the MOCHE core library.

use std::fmt;

/// Which input multiset a validation error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetKind {
    /// The reference set `R`.
    Reference,
    /// The test set `T`.
    Test,
}

impl fmt::Display for SetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetKind::Reference => f.write_str("reference set"),
            SetKind::Test => f.write_str("test set"),
        }
    }
}

/// Errors surfaced by the MOCHE core library.
#[derive(Debug, Clone, PartialEq)]
pub enum MocheError {
    /// The reference set is empty; the KS test is undefined.
    EmptyReference,
    /// The test set is empty; the KS test is undefined.
    EmptyTest,
    /// An input value is NaN or infinite.
    NonFiniteValue {
        /// Which multiset contained the offending value.
        which: SetKind,
        /// Index of the offending value in the caller's slice.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A streamed observation is NaN or infinite (rejected by
    /// `moche_stream::DriftMonitor::try_push` with the monitor state
    /// untouched). Unlike [`NonFiniteValue`](Self::NonFiniteValue) there
    /// is no caller-held slice to index into; the position is the
    /// monitor's accepted-observation count.
    NonFiniteObservation {
        /// How many observations had been accepted when this one was
        /// rejected (its position in the accepted stream).
        accepted: u64,
        /// The offending value.
        value: f64,
    },
    /// The significance level is outside the open interval `(0, 1)`.
    InvalidAlpha {
        /// The rejected significance level.
        alpha: f64,
    },
    /// The KS test between `R` and `T` already passes at the configured
    /// significance level, so there is nothing to explain.
    TestAlreadyPasses {
        /// The observed KS statistic `D(R, T)`.
        statistic: f64,
        /// The decision threshold (target p-value) at the configured `alpha`.
        threshold: f64,
    },
    /// No subset of `T` reverses the failed test. By Proposition 1 of the
    /// paper this can only happen when `alpha > 2/e^2 ≈ 0.2707`.
    NoExplanation {
        /// The significance level for which no explanation exists.
        alpha: f64,
    },
    /// The preference list is not a permutation of `0..m`.
    InvalidPreference {
        /// Human-readable description of the defect.
        reason: PreferenceDefect,
    },
    /// A resource limit (for the brute-force reference implementation) was
    /// exceeded before an answer was found.
    LimitExceeded {
        /// Number of subsets checked before giving up.
        checks: usize,
    },
    /// The preference list length does not match the test set size.
    PreferenceLengthMismatch {
        /// Expected length (`|T|`).
        expected: usize,
        /// Actual length supplied.
        actual: usize,
    },
    /// A sliding-window size is too small to form the paired windows a
    /// streaming consumer needs (see `moche_stream::DriftMonitor`).
    WindowTooSmall {
        /// The rejected window size.
        window: usize,
        /// The smallest acceptable window size.
        min: usize,
    },
    /// A batch call supplied a different number of preference lists than
    /// windows, so no window/preference pairing exists. Every result slot
    /// of that call carries this error (the inputs are unusable as a
    /// whole, but the `Vec<Result<..>>` shape is preserved for callers
    /// that tally per-window outcomes).
    PreferenceCountMismatch {
        /// Number of windows submitted.
        windows: usize,
        /// Number of preference lists supplied.
        preferences: usize,
    },
    /// A worker thread (or the sequential fallback path) panicked while
    /// explaining one window. The panic is caught and isolated: only this
    /// window's result carries the error, every other window in the run is
    /// unaffected, and the worker's scratch state is rebuilt.
    WorkerPanicked {
        /// Index of the window whose job panicked.
        window: usize,
        /// The panic payload's message, when it was a string.
        message: String,
    },
    /// Phase 2 could not grow a partial explanation to the target size.
    /// This indicates a numerical inconsistency between the Phase-1 size
    /// certificate and the Phase-2 checks and should not occur in practice;
    /// it is surfaced as an error rather than a panic so callers can recover.
    ConstructionIncomplete {
        /// Number of points selected before the scan was exhausted.
        built: usize,
        /// The target explanation size.
        k: usize,
    },
}

/// Specific ways a preference list can fail validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreferenceDefect {
    /// An index appears more than once.
    DuplicateIndex(usize),
    /// An index is out of range for the test set.
    OutOfRange(usize),
    /// A score used to build the list was NaN.
    NonFiniteScore(usize),
}

impl fmt::Display for PreferenceDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreferenceDefect::DuplicateIndex(i) => {
                write!(f, "test index {i} appears more than once")
            }
            PreferenceDefect::OutOfRange(i) => write!(f, "test index {i} is out of range"),
            PreferenceDefect::NonFiniteScore(i) => write!(f, "score at position {i} is not finite"),
        }
    }
}

impl fmt::Display for MocheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MocheError::EmptyReference => f.write_str("reference set must not be empty"),
            MocheError::EmptyTest => f.write_str("test set must not be empty"),
            MocheError::NonFiniteValue { which, index, value } => {
                write!(f, "{which} contains non-finite value {value} at index {index}")
            }
            MocheError::NonFiniteObservation { accepted, value } => {
                write!(
                    f,
                    "non-finite observation {value} rejected \
                     (after {accepted} accepted observations)"
                )
            }
            MocheError::InvalidAlpha { alpha } => {
                write!(f, "significance level {alpha} is outside (0, 1)")
            }
            MocheError::TestAlreadyPasses { statistic, threshold } => write!(
                f,
                "KS test already passes (D = {statistic:.6} <= threshold {threshold:.6}); \
                 nothing to explain"
            ),
            MocheError::NoExplanation { alpha } => write!(
                f,
                "no subset of the test set reverses the failed KS test at alpha = {alpha} \
                 (existence is only guaranteed for alpha <= 2/e^2)"
            ),
            MocheError::InvalidPreference { reason } => {
                write!(f, "invalid preference list: {reason}")
            }
            MocheError::LimitExceeded { checks } => {
                write!(f, "search limit exceeded after checking {checks} subsets")
            }
            MocheError::PreferenceLengthMismatch { expected, actual } => write!(
                f,
                "preference list has length {actual} but the test set has {expected} points"
            ),
            MocheError::PreferenceCountMismatch { windows, preferences } => write!(
                f,
                "{preferences} preference lists supplied for {windows} windows; \
                 one preference list per window is required"
            ),
            MocheError::WorkerPanicked { window, message } => {
                write!(f, "worker panicked while explaining window {window}: {message}")
            }
            MocheError::WindowTooSmall { window, min } => {
                write!(f, "window size {window} is too small (minimum {min})")
            }
            MocheError::ConstructionIncomplete { built, k } => write!(
                f,
                "phase 2 selected only {built} of {k} points; \
                 please report this as a numerical-consistency bug"
            ),
        }
    }
}

impl std::error::Error for MocheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MocheError::NonFiniteValue { which: SetKind::Test, index: 3, value: f64::NAN };
        let s = e.to_string();
        assert!(s.contains("test set"));
        assert!(s.contains("index 3"));
    }

    #[test]
    fn non_finite_observation_names_the_stream_position() {
        let e = MocheError::NonFiniteObservation { accepted: 5000, value: f64::NAN };
        let s = e.to_string();
        assert!(s.contains("non-finite observation NaN"), "{s}");
        assert!(s.contains("5000 accepted"), "{s}");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MocheError::EmptyReference);
        assert_eq!(e.to_string(), "reference set must not be empty");
    }

    #[test]
    fn preference_defects_display() {
        assert!(PreferenceDefect::DuplicateIndex(7).to_string().contains('7'));
        assert!(PreferenceDefect::OutOfRange(9).to_string().contains('9'));
        assert!(PreferenceDefect::NonFiniteScore(1).to_string().contains("finite"));
    }

    #[test]
    fn worker_panicked_names_window_and_message() {
        let e = MocheError::WorkerPanicked { window: 7, message: "boom".to_string() };
        let s = e.to_string();
        assert!(s.contains("window 7"), "{s}");
        assert!(s.contains("boom"), "{s}");
    }

    #[test]
    fn preference_count_mismatch_names_both_counts() {
        let e = MocheError::PreferenceCountMismatch { windows: 4, preferences: 2 };
        let s = e.to_string();
        assert!(s.contains("2 preference lists"), "{s}");
        assert!(s.contains("4 windows"), "{s}");
    }

    #[test]
    fn errors_compare_equal() {
        assert_eq!(
            MocheError::InvalidAlpha { alpha: 1.5 },
            MocheError::InvalidAlpha { alpha: 1.5 }
        );
        assert_ne!(MocheError::EmptyReference, MocheError::EmptyTest);
    }
}
