//! Parallel batch explanation: many failed KS tests, explained at once.
//!
//! The deployment shape the ROADMAP targets is a monitoring service: one or
//! few reference distributions, thousands of test windows arriving per
//! evaluation tick, an explanation wanted for every window that fails the
//! KS test. Explaining them one [`crate::Moche::explain`] call at a time
//! leaves cores idle and re-does shared work (sorting and validating the
//! same reference, reallocating identical scratch buffers) per window.
//!
//! [`BatchExplainer`] fixes both:
//!
//! * **Parallelism.** Jobs are distributed over a pool of scoped worker
//!   threads (`std::thread::scope` — no dependencies, no unsafe code). Each
//!   worker owns one [`ExplainEngine`], so scratch buffers are allocated
//!   once per thread, not once per job. Work is claimed from a shared
//!   atomic counter, which load-balances jobs of uneven cost (explanation
//!   cost varies with `k` and `q`).
//! * **The shared-reference mode.** [`explain_windows`]
//!   (one `R`, many `T` windows) validates and sorts the reference once
//!   into a [`SortedReference`] and reuses it for every window's base-vector
//!   build, cutting the per-window cost from `O((n + m) log(n + m))` to
//!   `O(n + m log m)` — significant when `n >> m`, the common monitoring
//!   regime.
//!
//! The batch API materializes every result, so output buffers cannot be
//! recycled here; for unbounded runs that consume results one at a time in
//! constant memory (windows *and* outputs recycled), use
//! [`crate::streaming::StreamingBatchExplainer::explain_source`].
//!
//! Results are returned in job order and are byte-identical to sequential
//! [`crate::Moche::explain`] calls (enforced by `tests/proptest_engine.rs`).
//! Failed tests yield `Ok(Explanation)`; windows that pass the test, or
//! invalid inputs, yield the same `Err` the sequential API produces, so a
//! caller can distinguish "nothing to explain" from real failures per job.
//!
//! [`explain_windows`]: BatchExplainer::explain_windows
//!
//! # Examples
//!
//! ```
//! use moche_core::batch::{BatchExplainer, BatchJob};
//! use moche_core::{PreferenceList, SortedReference};
//!
//! let reference: Vec<f64> = (0..64).map(|i| f64::from(i % 8)).collect();
//! let windows: Vec<Vec<f64>> = (0..16)
//!     .map(|w| (0..32).map(|i| f64::from((i + w) % 8) + 4.0).collect())
//!     .collect();
//!
//! let explainer = BatchExplainer::new(0.05).unwrap();
//! let shared = SortedReference::new(&reference).unwrap();
//! let results = explainer.explain_windows(&shared, &windows, None);
//! assert_eq!(results.len(), windows.len());
//! for result in &results {
//!     let e = result.as_ref().unwrap();
//!     assert!(e.outcome_after.passes());
//! }
//! ```

use crate::base_vector::SortedReference;
use crate::engine::ExplainEngine;
use crate::error::MocheError;
use crate::ks::KsConfig;
use crate::moche::Explanation;
use crate::preference::PreferenceList;
use crate::ref_index::ReferenceIndex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// How the shared reference is prepared for per-window base-vector builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReferenceMode {
    /// Re-merge the sorted reference with each window
    /// ([`crate::BaseVector::build_with_reference`]): `O(n + m)` per
    /// window.
    #[default]
    Merged,
    /// Splice each window into a precomputed [`ReferenceIndex`]
    /// ([`crate::BaseVector::build_with_index`]): the index is built once
    /// per call and the per-window merge loop is replaced by chunk copies.
    /// Results are byte-identical to [`ReferenceMode::Merged`].
    Indexed,
}

/// A per-window preference scorer `(window index, window) -> preference`,
/// evaluated inside worker threads (see [`WindowPreferences::Scored`] and
/// [`crate::streaming`]).
pub type ScoreFn<'a> = &'a (dyn Fn(usize, &[f64]) -> Result<PreferenceList, MocheError> + Sync);

/// The recycled-output scorer shape: `(window index, window, preference
/// slot)`, overwriting a worker-owned [`PreferenceList`] in place (see
/// [`PreferenceList::fill_from_scores_desc`]) instead of allocating a fresh
/// list per window. This is what extends the zero-allocation guarantee to
/// scored streams ([`WindowPreferences::ScoredInto`] and
/// [`crate::streaming::StreamingBatchExplainer::explain_source_scored`]).
pub type ScoreIntoFn<'a> =
    &'a (dyn Fn(usize, &[f64], &mut PreferenceList) -> Result<(), MocheError> + Sync);

/// How per-window preference lists are supplied to the worker threads.
#[derive(Clone, Copy)]
pub enum WindowPreferences<'a> {
    /// Every window is explained under the identity order.
    Identity,
    /// One precomputed list per window, in window order.
    PerWindow(&'a [PreferenceList]),
    /// Derive each window's preference *inside the worker thread* from the
    /// window index and contents — this parallelizes expensive scoring
    /// (e.g. Spectral Residual) along with the explanation itself. A
    /// returned error is reported in that window's result slot.
    Scored(ScoreFn<'a>),
    /// [`Scored`](Self::Scored) with the preference written into a
    /// worker-recycled list instead of allocated per window — the
    /// steady-state zero-allocation form.
    ScoredInto(ScoreIntoFn<'a>),
}

impl std::fmt::Debug for WindowPreferences<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowPreferences::Identity => f.write_str("Identity"),
            WindowPreferences::PerWindow(lists) => {
                f.debug_tuple("PerWindow").field(&lists.len()).finish()
            }
            WindowPreferences::Scored(_) => f.write_str("Scored(..)"),
            WindowPreferences::ScoredInto(_) => f.write_str("ScoredInto(..)"),
        }
    }
}

/// One independent `(reference, test, preference)` explanation request.
#[derive(Debug, Clone, Copy)]
pub struct BatchJob<'a> {
    /// The reference sample `R`.
    pub reference: &'a [f64],
    /// The test sample `T`.
    pub test: &'a [f64],
    /// Preference order over `T`; `None` means the identity order.
    pub preference: Option<&'a PreferenceList>,
}

/// Per-worker recycled state: the engine (which owns every internal scratch
/// buffer) plus a preference list reused by the identity and scored-into
/// paths, so neither allocates per window in steady state.
struct WorkerScratch {
    engine: ExplainEngine,
    pref: PreferenceList,
}

impl WorkerScratch {
    fn new(cfg: KsConfig) -> Self {
        Self { engine: ExplainEngine::with_config(cfg), pref: PreferenceList::identity(0) }
    }
}

/// A parallel explainer over many failed KS tests.
///
/// Cheap to construct (two scalars); holds no buffers itself — per-thread
/// [`ExplainEngine`]s are created inside each call.
#[derive(Debug, Clone, Copy)]
pub struct BatchExplainer {
    cfg: KsConfig,
    threads: usize,
    reference_mode: ReferenceMode,
}

impl BatchExplainer {
    /// Creates a batch explainer for significance level `alpha`, using all
    /// available cores.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        Ok(Self::with_config(KsConfig::new(alpha)?))
    }

    /// Creates a batch explainer from an existing [`KsConfig`].
    pub fn with_config(cfg: KsConfig) -> Self {
        Self { cfg, threads: 0, reference_mode: ReferenceMode::default() }
    }

    /// Caps the worker-thread count. `0` (the default) means "one per
    /// available core".
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects how [`explain_windows`](Self::explain_windows) builds each
    /// window's base vector (merged vs indexed reference — identical
    /// results, different constant factors).
    #[must_use]
    pub fn reference_mode(mut self, mode: ReferenceMode) -> Self {
        self.reference_mode = mode;
        self
    }

    /// The KS configuration in use.
    #[inline]
    pub fn config(&self) -> &KsConfig {
        &self.cfg
    }

    /// The number of worker threads a call with `jobs` jobs would actually
    /// use: the configured cap (or the core count for `0`), bounded by the
    /// job count. On a single-core box this is 1 — the batch silently
    /// serializes — so CLI consumers report this number instead of the
    /// requested cap.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        self.worker_count(jobs)
    }

    fn worker_count(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cap = if self.threads == 0 { hw } else { self.threads };
        cap.min(jobs).max(1)
    }

    /// Explains every job, in parallel, returning results in job order.
    ///
    /// Per-job errors (passing test, bad preference, invalid input) are
    /// reported in the corresponding slot; one bad job never poisons the
    /// batch.
    pub fn explain_jobs(&self, jobs: &[BatchJob<'_>]) -> Vec<Result<Explanation, MocheError>> {
        self.run(jobs, |scratch, job| match job.preference {
            Some(pref) => scratch.engine.explain(job.reference, job.test, pref),
            None => {
                scratch.pref.fill_identity(job.test.len());
                scratch.engine.explain(job.reference, job.test, &scratch.pref)
            }
        })
    }

    /// The shared-reference mode: one reference, many test windows. The
    /// reference's cumulative structures are prepared once (see
    /// [`SortedReference`]) and shared read-only by every worker.
    ///
    /// `preferences`, when given, supplies one list per window (in order);
    /// `None` explains every window under the identity order.
    ///
    /// # Errors
    ///
    /// If `preferences` is `Some` but its length differs from `windows`',
    /// no window/preference pairing exists and every result slot carries
    /// [`MocheError::PreferenceCountMismatch`]. (With zero windows the
    /// result is empty either way — there are no slots to report into.)
    pub fn explain_windows<W: AsRef<[f64]> + Sync>(
        &self,
        reference: &SortedReference,
        windows: &[W],
        preferences: Option<&[PreferenceList]>,
    ) -> Vec<Result<Explanation, MocheError>> {
        let prefs = match preferences {
            Some(lists) => WindowPreferences::PerWindow(lists),
            None => WindowPreferences::Identity,
        };
        self.explain_windows_with(reference, windows, prefs)
    }

    /// [`explain_windows`](Self::explain_windows) with the full preference
    /// vocabulary: identity, precomputed per-window lists, or a score
    /// callback evaluated inside the worker threads (see
    /// [`WindowPreferences`]).
    ///
    /// Under [`ReferenceMode::Indexed`] a [`ReferenceIndex`] is built once
    /// from `reference` (an `O(n)` pass over the already-sorted values) and
    /// every window is spliced into it.
    ///
    /// # Errors
    ///
    /// If [`WindowPreferences::PerWindow`] supplies a different number of
    /// lists than `windows`, every result slot carries
    /// [`MocheError::PreferenceCountMismatch`] — the inputs are unusable as
    /// a whole, but the one-result-per-window shape is preserved for
    /// callers that tally per-window outcomes.
    pub fn explain_windows_with<W: AsRef<[f64]> + Sync>(
        &self,
        reference: &SortedReference,
        windows: &[W],
        preferences: WindowPreferences<'_>,
    ) -> Vec<Result<Explanation, MocheError>> {
        if let WindowPreferences::PerWindow(prefs) = preferences {
            if prefs.len() != windows.len() {
                let err = MocheError::PreferenceCountMismatch {
                    windows: windows.len(),
                    preferences: prefs.len(),
                };
                return windows.iter().map(|_| Err(err.clone())).collect();
            }
        }
        let index = match self.reference_mode {
            ReferenceMode::Merged => None,
            ReferenceMode::Indexed => Some(ReferenceIndex::from_sorted(reference)),
        };
        let jobs: Vec<usize> = (0..windows.len()).collect();
        self.run(&jobs, |scratch, &i| {
            let window = windows[i].as_ref();
            let owned_pref;
            let pref = match preferences {
                WindowPreferences::Identity => {
                    scratch.pref.fill_identity(window.len());
                    &scratch.pref
                }
                WindowPreferences::PerWindow(prefs) => &prefs[i],
                WindowPreferences::Scored(score) => {
                    owned_pref = score(i, window)?;
                    &owned_pref
                }
                WindowPreferences::ScoredInto(score) => {
                    score(i, window, &mut scratch.pref)?;
                    &scratch.pref
                }
            };
            match &index {
                Some(index) => scratch.engine.explain_with_index(index, window, pref),
                None => scratch.engine.explain_with_reference(reference, window, pref),
            }
        })
    }

    /// The worker pool: claim-by-atomic-counter over `items`, one scratch
    /// set (engine + recycled preference list) per worker, results
    /// collected in item order.
    ///
    /// Every job runs under [`run_one`](Self::run_one)'s `catch_unwind`, so
    /// a panicking job (a buggy score callback, an injected fault) yields
    /// [`MocheError::WorkerPanicked`] in its own slot and nothing else: the
    /// worker rebuilds its scratch and keeps claiming jobs, and sibling
    /// workers never observe the panic.
    fn run<T, F>(&self, items: &[T], f: F) -> Vec<Result<Explanation, MocheError>>
    where
        T: Sync,
        F: Fn(&mut WorkerScratch, &T) -> Result<Explanation, MocheError> + Sync,
    {
        let n = items.len();
        let workers = self.worker_count(n);
        if workers <= 1 {
            // The sequential fast path (single core, or one job) must give
            // the same isolation guarantee as the pool.
            let mut scratch = WorkerScratch::new(self.cfg);
            return (0..n).map(|i| self.run_one(&mut scratch, &f, items, i)).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<Explanation, MocheError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = WorkerScratch::new(self.cfg);
                    loop {
                        // lint:allow(relaxed): work-claim index — the RMW's
                        // atomicity alone partitions jobs; job inputs are
                        // published by the scoped-thread spawn, not this add.
                        // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let result = self.run_one(&mut scratch, &f, items, i);
                        // Each slot is written by exactly one claimant and
                        // read only after the scope joins; a poisoned flag
                        // can only be the residue of an already-reported
                        // panic, so recover the value rather than cascade.
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner().unwrap_or_else(PoisonError::into_inner).unwrap_or_else(|| {
                    // Unreachable while claiming is exhaustive; reported as
                    // a per-window error rather than trusted with a panic.
                    Err(MocheError::WorkerPanicked {
                        window: i,
                        message: "result slot was never filled".to_string(),
                    })
                })
            })
            .collect()
    }

    /// Runs one job under `catch_unwind`. On a caught panic the scratch
    /// (engine buffers, preference list) may be mid-mutation, so it is
    /// rebuilt before the worker continues; the panic itself becomes
    /// [`MocheError::WorkerPanicked`] carrying the payload's message.
    fn run_one<T, F>(
        &self,
        scratch: &mut WorkerScratch,
        f: &F,
        items: &[T],
        i: usize,
    ) -> Result<Explanation, MocheError>
    where
        T: Sync,
        F: Fn(&mut WorkerScratch, &T) -> Result<Explanation, MocheError> + Sync,
    {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::fault::failpoint("batch.worker");
            f(scratch, &items[i])
        }));
        match attempt {
            Ok(result) => result,
            Err(payload) => {
                *scratch = WorkerScratch::new(self.cfg);
                Err(MocheError::WorkerPanicked {
                    window: i,
                    message: crate::fault::panic_message(payload.as_ref()),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moche::{ConstructionStrategy, Moche};

    fn windows_against(reference_mod: u32, count: usize, len: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
        let reference: Vec<f64> = (0..200u32).map(|i| f64::from(i % reference_mod)).collect();
        let windows: Vec<Vec<f64>> = (0..count)
            .map(|w| {
                (0..len).map(|i| f64::from(((i + w) % 7) as u32) + 5.0 + (w % 3) as f64).collect()
            })
            .collect();
        (reference, windows)
    }

    #[test]
    fn jobs_match_sequential_reference_path() {
        let (r, windows) = windows_against(10, 12, 60);
        let moche = Moche::new(0.05).unwrap().construction(ConstructionStrategy::Reference);
        let jobs: Vec<BatchJob<'_>> =
            windows.iter().map(|w| BatchJob { reference: &r, test: w, preference: None }).collect();
        for threads in [1, 4] {
            let batch = BatchExplainer::new(0.05).unwrap().threads(threads);
            let results = batch.explain_jobs(&jobs);
            assert_eq!(results.len(), windows.len());
            for (w, result) in windows.iter().zip(&results) {
                let pref = PreferenceList::identity(w.len());
                let expected = moche.explain(&r, w, &pref).unwrap();
                let got = result.as_ref().unwrap();
                assert_eq!(got.indices(), expected.indices());
                assert_eq!(got.phase1, expected.phase1);
            }
        }
    }

    #[test]
    fn shared_reference_matches_independent_jobs() {
        let (r, windows) = windows_against(10, 16, 50);
        let shared = SortedReference::new(&r).unwrap();
        let batch = BatchExplainer::new(0.05).unwrap().threads(4);
        let jobs: Vec<BatchJob<'_>> =
            windows.iter().map(|w| BatchJob { reference: &r, test: w, preference: None }).collect();
        let a = batch.explain_jobs(&jobs);
        let b = batch.explain_windows(&shared, &windows, None);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
        }
    }

    #[test]
    fn per_window_preferences_are_honoured() {
        let (r, windows) = windows_against(10, 6, 40);
        let shared = SortedReference::new(&r).unwrap();
        let prefs: Vec<PreferenceList> =
            windows.iter().map(|w| PreferenceList::reversed(w.len())).collect();
        let batch = BatchExplainer::new(0.05).unwrap().threads(2);
        let results = batch.explain_windows(&shared, &windows, Some(&prefs));
        let moche = Moche::new(0.05).unwrap();
        for ((w, pref), result) in windows.iter().zip(&prefs).zip(&results) {
            let expected = moche.explain(&r, w, pref).unwrap();
            assert_eq!(result.as_ref().unwrap().indices(), expected.indices());
        }
    }

    #[test]
    fn indexed_mode_matches_merged_mode() {
        let (r, windows) = windows_against(10, 16, 50);
        let shared = SortedReference::new(&r).unwrap();
        for threads in [1, 4] {
            let merged = BatchExplainer::new(0.05).unwrap().threads(threads);
            let indexed = merged.reference_mode(ReferenceMode::Indexed);
            let a = merged.explain_windows(&shared, &windows, None);
            let b = indexed.explain_windows(&shared, &windows, None);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
            }
        }
    }

    #[test]
    fn scored_preferences_run_in_workers_and_match_precomputed() {
        let (r, windows) = windows_against(10, 8, 40);
        let shared = SortedReference::new(&r).unwrap();
        let prefs: Vec<PreferenceList> =
            windows.iter().map(|w| PreferenceList::reversed(w.len())).collect();
        let batch = BatchExplainer::new(0.05).unwrap().threads(3);
        let precomputed = batch.explain_windows(&shared, &windows, Some(&prefs));
        let scored = batch.explain_windows_with(
            &shared,
            &windows,
            WindowPreferences::Scored(&|_, w| Ok(PreferenceList::reversed(w.len()))),
        );
        for (a, b) in precomputed.iter().zip(&scored) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn scored_into_matches_scored() {
        let (r, windows) = windows_against(10, 8, 40);
        let shared = SortedReference::new(&r).unwrap();
        let batch = BatchExplainer::new(0.05).unwrap().threads(3);
        let owning = batch.explain_windows_with(
            &shared,
            &windows,
            WindowPreferences::Scored(&|_, w| Ok(PreferenceList::reversed(w.len()))),
        );
        let recycled = batch.explain_windows_with(
            &shared,
            &windows,
            WindowPreferences::ScoredInto(&|_, w, pref| {
                let scores: Vec<f64> = (0..w.len()).map(|i| i as f64).collect();
                pref.fill_from_scores_desc(&scores)
            }),
        );
        for (a, b) in owning.iter().zip(&recycled) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn scored_preference_errors_land_in_the_window_slot() {
        let (r, windows) = windows_against(10, 3, 40);
        let shared = SortedReference::new(&r).unwrap();
        let batch = BatchExplainer::new(0.05).unwrap().threads(2);
        let results = batch.explain_windows_with(
            &shared,
            &windows,
            WindowPreferences::Scored(&|i, w| {
                if i == 1 {
                    // A wrong-length preference is the canonical score bug.
                    Ok(PreferenceList::identity(w.len() - 1))
                } else {
                    Ok(PreferenceList::identity(w.len()))
                }
            }),
        );
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(MocheError::PreferenceLengthMismatch { .. })));
        assert!(results[2].is_ok());
    }

    #[test]
    fn effective_threads_reports_the_real_worker_count() {
        let batch = BatchExplainer::new(0.05).unwrap().threads(8);
        assert_eq!(batch.effective_threads(3), 3); // bounded by job count
        assert_eq!(batch.effective_threads(100), 8); // bounded by the cap
        assert_eq!(batch.effective_threads(0), 1); // never zero
        let auto = BatchExplainer::new(0.05).unwrap();
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(auto.effective_threads(1000), hw.min(1000));
    }

    #[test]
    fn bad_jobs_do_not_poison_the_batch() {
        let (r, windows) = windows_against(10, 4, 40);
        let passing = r.clone();
        let jobs = vec![
            BatchJob { reference: &r, test: &windows[0], preference: None },
            BatchJob { reference: &r, test: &passing, preference: None }, // passes
            BatchJob { reference: &r, test: &windows[1], preference: None },
        ];
        let results = BatchExplainer::new(0.05).unwrap().threads(2).explain_jobs(&jobs);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(MocheError::TestAlreadyPasses { .. })));
        assert!(results[2].is_ok());
    }

    #[test]
    fn mismatched_preference_count_is_a_structured_error() {
        let (r, windows) = windows_against(10, 3, 40);
        let shared = SortedReference::new(&r).unwrap();
        let prefs = vec![PreferenceList::identity(40)];
        let results =
            BatchExplainer::new(0.05).unwrap().explain_windows(&shared, &windows, Some(&prefs));
        assert_eq!(results.len(), windows.len(), "the per-window shape is preserved");
        for result in &results {
            assert_eq!(
                result.as_ref().unwrap_err(),
                &MocheError::PreferenceCountMismatch { windows: 3, preferences: 1 }
            );
        }
    }

    #[test]
    fn panicking_scorer_is_isolated_to_its_window() {
        let (r, windows) = windows_against(10, 5, 40);
        let shared = SortedReference::new(&r).unwrap();
        for threads in [1, 4] {
            let batch = BatchExplainer::new(0.05).unwrap().threads(threads);
            let results = batch.explain_windows_with(
                &shared,
                &windows,
                WindowPreferences::Scored(&|i, w| {
                    if i == 2 {
                        panic!("scorer bug at window {i}");
                    }
                    Ok(PreferenceList::identity(w.len()))
                }),
            );
            for (i, result) in results.iter().enumerate() {
                if i == 2 {
                    match result {
                        Err(MocheError::WorkerPanicked { window, message }) => {
                            assert_eq!(*window, 2);
                            assert!(message.contains("scorer bug"), "{message}");
                        }
                        other => panic!("expected WorkerPanicked, got {other:?}"),
                    }
                } else {
                    assert!(result.is_ok(), "window {i} must be unaffected ({threads} threads)");
                }
            }
        }
    }

    #[test]
    fn worker_recovers_after_a_caught_panic() {
        // The same worker that caught a panic keeps explaining later
        // windows correctly: force a single thread so every window after
        // the panicking one exercises the rebuilt scratch.
        let (r, windows) = windows_against(10, 6, 40);
        let shared = SortedReference::new(&r).unwrap();
        let batch = BatchExplainer::new(0.05).unwrap().threads(1);
        let clean = batch.explain_windows(&shared, &windows, None);
        let faulted = batch.explain_windows_with(
            &shared,
            &windows,
            WindowPreferences::Scored(&|i, w| {
                if i == 0 {
                    panic!("first window panics");
                }
                Ok(PreferenceList::identity(w.len()))
            }),
        );
        assert!(matches!(faulted[0], Err(MocheError::WorkerPanicked { .. })));
        for i in 1..windows.len() {
            assert_eq!(
                faulted[i].as_ref().unwrap(),
                clean[i].as_ref().unwrap(),
                "window {i} must match the clean run exactly"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = BatchExplainer::new(0.05).unwrap();
        assert!(batch.explain_jobs(&[]).is_empty());
        let shared = SortedReference::new(&[1.0, 2.0]).unwrap();
        let no_windows: Vec<Vec<f64>> = Vec::new();
        assert!(batch.explain_windows(&shared, &no_windows, None).is_empty());
    }
}
