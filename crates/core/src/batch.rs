//! Parallel batch explanation: many failed KS tests, explained at once.
//!
//! The deployment shape the ROADMAP targets is a monitoring service: one or
//! few reference distributions, thousands of test windows arriving per
//! evaluation tick, an explanation wanted for every window that fails the
//! KS test. Explaining them one [`crate::Moche::explain`] call at a time
//! leaves cores idle and re-does shared work (sorting and validating the
//! same reference, reallocating identical scratch buffers) per window.
//!
//! [`BatchExplainer`] fixes both:
//!
//! * **Parallelism.** Jobs are distributed over a pool of scoped worker
//!   threads (`std::thread::scope` — no dependencies, no unsafe code). Each
//!   worker owns one [`ExplainEngine`], so scratch buffers are allocated
//!   once per thread, not once per job. Work is claimed from a shared
//!   atomic counter, which load-balances jobs of uneven cost (explanation
//!   cost varies with `k` and `q`).
//! * **The shared-reference mode.** [`explain_windows`]
//!   (one `R`, many `T` windows) validates and sorts the reference once
//!   into a [`SortedReference`] and reuses it for every window's base-vector
//!   build, cutting the per-window cost from `O((n + m) log(n + m))` to
//!   `O(n + m log m)` — significant when `n >> m`, the common monitoring
//!   regime.
//!
//! Results are returned in job order and are byte-identical to sequential
//! [`crate::Moche::explain`] calls (enforced by `tests/proptest_engine.rs`).
//! Failed tests yield `Ok(Explanation)`; windows that pass the test, or
//! invalid inputs, yield the same `Err` the sequential API produces, so a
//! caller can distinguish "nothing to explain" from real failures per job.
//!
//! [`explain_windows`]: BatchExplainer::explain_windows
//!
//! # Examples
//!
//! ```
//! use moche_core::batch::{BatchExplainer, BatchJob};
//! use moche_core::{PreferenceList, SortedReference};
//!
//! let reference: Vec<f64> = (0..64).map(|i| f64::from(i % 8)).collect();
//! let windows: Vec<Vec<f64>> = (0..16)
//!     .map(|w| (0..32).map(|i| f64::from((i + w) % 8) + 4.0).collect())
//!     .collect();
//!
//! let explainer = BatchExplainer::new(0.05).unwrap();
//! let shared = SortedReference::new(&reference).unwrap();
//! let results = explainer.explain_windows(&shared, &windows, None);
//! assert_eq!(results.len(), windows.len());
//! for result in &results {
//!     let e = result.as_ref().unwrap();
//!     assert!(e.outcome_after.passes());
//! }
//! ```

use crate::base_vector::SortedReference;
use crate::engine::ExplainEngine;
use crate::error::MocheError;
use crate::ks::KsConfig;
use crate::moche::Explanation;
use crate::preference::PreferenceList;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One independent `(reference, test, preference)` explanation request.
#[derive(Debug, Clone, Copy)]
pub struct BatchJob<'a> {
    /// The reference sample `R`.
    pub reference: &'a [f64],
    /// The test sample `T`.
    pub test: &'a [f64],
    /// Preference order over `T`; `None` means the identity order.
    pub preference: Option<&'a PreferenceList>,
}

/// A parallel explainer over many failed KS tests.
///
/// Cheap to construct (two scalars); holds no buffers itself — per-thread
/// [`ExplainEngine`]s are created inside each call.
#[derive(Debug, Clone, Copy)]
pub struct BatchExplainer {
    cfg: KsConfig,
    threads: usize,
}

impl BatchExplainer {
    /// Creates a batch explainer for significance level `alpha`, using all
    /// available cores.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        Ok(Self::with_config(KsConfig::new(alpha)?))
    }

    /// Creates a batch explainer from an existing [`KsConfig`].
    pub fn with_config(cfg: KsConfig) -> Self {
        Self { cfg, threads: 0 }
    }

    /// Caps the worker-thread count. `0` (the default) means "one per
    /// available core".
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The KS configuration in use.
    #[inline]
    pub fn config(&self) -> &KsConfig {
        &self.cfg
    }

    fn worker_count(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cap = if self.threads == 0 { hw } else { self.threads };
        cap.min(jobs).max(1)
    }

    /// Explains every job, in parallel, returning results in job order.
    ///
    /// Per-job errors (passing test, bad preference, invalid input) are
    /// reported in the corresponding slot; one bad job never poisons the
    /// batch.
    pub fn explain_jobs(&self, jobs: &[BatchJob<'_>]) -> Vec<Result<Explanation, MocheError>> {
        self.run(jobs, |engine, job| match job.preference {
            Some(pref) => engine.explain(job.reference, job.test, pref),
            None => {
                let pref = PreferenceList::identity(job.test.len());
                engine.explain(job.reference, job.test, &pref)
            }
        })
    }

    /// The shared-reference mode: one reference, many test windows. The
    /// reference's cumulative structures are prepared once (see
    /// [`SortedReference`]) and shared read-only by every worker.
    ///
    /// `preferences`, when given, supplies one list per window (in order);
    /// `None` explains every window under the identity order.
    ///
    /// # Panics
    ///
    /// Panics if `preferences` is `Some` but its length differs from
    /// `windows`' — that is a caller bug, not a per-job condition.
    pub fn explain_windows<W: AsRef<[f64]> + Sync>(
        &self,
        reference: &SortedReference,
        windows: &[W],
        preferences: Option<&[PreferenceList]>,
    ) -> Vec<Result<Explanation, MocheError>> {
        if let Some(prefs) = preferences {
            assert_eq!(prefs.len(), windows.len(), "one preference list per window is required");
        }
        let indexed: Vec<usize> = (0..windows.len()).collect();
        self.run(&indexed, |engine, &i| {
            let window = windows[i].as_ref();
            match preferences {
                Some(prefs) => engine.explain_with_reference(reference, window, &prefs[i]),
                None => {
                    let pref = PreferenceList::identity(window.len());
                    engine.explain_with_reference(reference, window, &pref)
                }
            }
        })
    }

    /// The worker pool: claim-by-atomic-counter over `items`, one engine per
    /// worker, results collected in item order.
    fn run<T, F>(&self, items: &[T], f: F) -> Vec<Result<Explanation, MocheError>>
    where
        T: Sync,
        F: Fn(&mut ExplainEngine, &T) -> Result<Explanation, MocheError> + Sync,
    {
        let n = items.len();
        let workers = self.worker_count(n);
        if workers <= 1 {
            let mut engine = ExplainEngine::with_config(self.cfg);
            return items.iter().map(|item| f(&mut engine, item)).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<Explanation, MocheError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut engine = ExplainEngine::with_config(self.cfg);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let result = f(&mut engine, &items[i]);
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot is filled before the scope ends")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moche::{ConstructionStrategy, Moche};

    fn windows_against(reference_mod: u32, count: usize, len: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
        let reference: Vec<f64> = (0..200u32).map(|i| f64::from(i % reference_mod)).collect();
        let windows: Vec<Vec<f64>> = (0..count)
            .map(|w| {
                (0..len).map(|i| f64::from(((i + w) % 7) as u32) + 5.0 + (w % 3) as f64).collect()
            })
            .collect();
        (reference, windows)
    }

    #[test]
    fn jobs_match_sequential_reference_path() {
        let (r, windows) = windows_against(10, 12, 60);
        let moche = Moche::new(0.05).unwrap().construction(ConstructionStrategy::Reference);
        let jobs: Vec<BatchJob<'_>> =
            windows.iter().map(|w| BatchJob { reference: &r, test: w, preference: None }).collect();
        for threads in [1, 4] {
            let batch = BatchExplainer::new(0.05).unwrap().threads(threads);
            let results = batch.explain_jobs(&jobs);
            assert_eq!(results.len(), windows.len());
            for (w, result) in windows.iter().zip(&results) {
                let pref = PreferenceList::identity(w.len());
                let expected = moche.explain(&r, w, &pref).unwrap();
                let got = result.as_ref().unwrap();
                assert_eq!(got.indices(), expected.indices());
                assert_eq!(got.phase1, expected.phase1);
            }
        }
    }

    #[test]
    fn shared_reference_matches_independent_jobs() {
        let (r, windows) = windows_against(10, 16, 50);
        let shared = SortedReference::new(&r).unwrap();
        let batch = BatchExplainer::new(0.05).unwrap().threads(4);
        let jobs: Vec<BatchJob<'_>> =
            windows.iter().map(|w| BatchJob { reference: &r, test: w, preference: None }).collect();
        let a = batch.explain_jobs(&jobs);
        let b = batch.explain_windows(&shared, &windows, None);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
        }
    }

    #[test]
    fn per_window_preferences_are_honoured() {
        let (r, windows) = windows_against(10, 6, 40);
        let shared = SortedReference::new(&r).unwrap();
        let prefs: Vec<PreferenceList> =
            windows.iter().map(|w| PreferenceList::reversed(w.len())).collect();
        let batch = BatchExplainer::new(0.05).unwrap().threads(2);
        let results = batch.explain_windows(&shared, &windows, Some(&prefs));
        let moche = Moche::new(0.05).unwrap();
        for ((w, pref), result) in windows.iter().zip(&prefs).zip(&results) {
            let expected = moche.explain(&r, w, pref).unwrap();
            assert_eq!(result.as_ref().unwrap().indices(), expected.indices());
        }
    }

    #[test]
    fn bad_jobs_do_not_poison_the_batch() {
        let (r, windows) = windows_against(10, 4, 40);
        let passing = r.clone();
        let jobs = vec![
            BatchJob { reference: &r, test: &windows[0], preference: None },
            BatchJob { reference: &r, test: &passing, preference: None }, // passes
            BatchJob { reference: &r, test: &windows[1], preference: None },
        ];
        let results = BatchExplainer::new(0.05).unwrap().threads(2).explain_jobs(&jobs);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(MocheError::TestAlreadyPasses { .. })));
        assert!(results[2].is_ok());
    }

    #[test]
    #[should_panic(expected = "one preference list per window")]
    fn mismatched_preference_count_panics() {
        let (r, windows) = windows_against(10, 3, 40);
        let shared = SortedReference::new(&r).unwrap();
        let prefs = vec![PreferenceList::identity(40)];
        let _ = BatchExplainer::new(0.05).unwrap().explain_windows(&shared, &windows, Some(&prefs));
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = BatchExplainer::new(0.05).unwrap();
        assert!(batch.explain_jobs(&[]).is_empty());
        let shared = SortedReference::new(&[1.0, 2.0]).unwrap();
        let no_windows: Vec<Vec<f64>> = Vec::new();
        assert!(batch.explain_windows(&shared, &no_windows, None).is_empty());
    }
}
