//! Edge-case suite: duplicate test-set values interacting with preference
//! ranks. MOCHE works on cumulative vectors (value multiplicities), while
//! Definition 2's lexicographic order distinguishes *occurrences* — these
//! tests pin down that the greedy scan always picks the better-ranked
//! occurrence of equal values.

use moche_core::brute_force::{brute_force_explain, BruteForceLimits};
use moche_core::{KsConfig, Moche, PreferenceList};

/// R concentrated low, T with many duplicated high values: any minimum
/// explanation removes some of the duplicates, and which *occurrence* is
/// chosen is purely a preference question.
fn duplicated_instance() -> (Vec<f64>, Vec<f64>) {
    let r: Vec<f64> = (0..40).map(|i| f64::from(i % 4)).collect();
    // Ten copies of 9.0 and a few low values.
    let mut t = vec![9.0f64; 10];
    t.extend([0.0, 1.0, 2.0, 3.0]);
    (r, t)
}

#[test]
fn instance_fails_and_needs_duplicate_removal() {
    let (r, t) = duplicated_instance();
    let moche = Moche::new(0.05).unwrap();
    assert!(moche.test(&r, &t).unwrap().rejected);
    let e = moche.explain(&r, &t, &PreferenceList::identity(t.len())).unwrap();
    // Only nines can fix this test.
    assert!(e.values().iter().all(|&v| v == 9.0), "values = {:?}", e.values());
}

#[test]
fn preferred_occurrences_are_selected_among_equal_values() {
    let (r, t) = duplicated_instance();
    let moche = Moche::new(0.05).unwrap();
    // Rank the nines in reverse index order: 9, 8, 7, ... so the selected
    // occurrences must be the highest indices among the nines.
    let mut order: Vec<usize> = (0..10).rev().collect();
    order.extend(10..t.len());
    let pref = PreferenceList::new(order).unwrap();
    let e = moche.explain(&r, &t, &pref).unwrap();
    let k = e.size();
    let expected: Vec<usize> = (0..10).rev().take(k).collect();
    assert_eq!(e.indices(), &expected[..], "must take the best-ranked occurrences");
}

#[test]
fn matches_brute_force_on_duplicate_heavy_instances() {
    // Small enough for the oracle; every preference permutation of a
    // duplicate-heavy test set must agree with brute force.
    let r: Vec<f64> = (0..20).map(|i| f64::from(i % 2)).collect();
    let t = vec![5.0, 5.0, 5.0, 5.0, 0.0, 1.0];
    let cfg = KsConfig::new(0.1).unwrap();
    let moche = Moche::new(0.1).unwrap();
    assert!(moche.test(&r, &t).unwrap().rejected);
    for seed in 0..40u64 {
        let pref = PreferenceList::random(t.len(), seed);
        let fast = moche.explain(&r, &t, &pref).unwrap();
        let slow = brute_force_explain(&r, &t, &cfg, &pref, BruteForceLimits::default()).unwrap();
        let mut a = fast.indices().to_vec();
        let mut b = slow.indices;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "seed {seed}, pref {:?}", pref.as_order());
    }
}

#[test]
fn interleaved_ranks_across_values() {
    // Preference alternates between duplicate groups; the lex-minimal
    // explanation interleaves occurrences exactly as ranked.
    let r: Vec<f64> = (0..30).map(|i| f64::from(i % 3)).collect();
    let t = vec![7.0, 8.0, 7.0, 8.0, 7.0, 8.0];
    let cfg = KsConfig::new(0.1).unwrap();
    let moche = Moche::new(0.1).unwrap();
    if !moche.test(&r, &t).unwrap().rejected {
        return; // construction-dependent; only assert when failing
    }
    let pref = PreferenceList::identity(t.len());
    let fast = moche.explain(&r, &t, &pref).unwrap();
    let slow = brute_force_explain(&r, &t, &cfg, &pref, BruteForceLimits::default()).unwrap();
    assert_eq!(fast.indices(), &slow.indices[..]);
    // Identity preference + greedy: selected indices are increasing.
    assert!(fast.indices().windows(2).all(|w| w[0] < w[1]));
}
