//! Failpoint-driven fault scenarios for the batch and streaming pipelines.
//!
//! These tests compile only under `--features fault-injection`; they drive
//! the in-tree registry (`moche_core::fault`) to provoke the exact failures
//! the robustness layer claims to survive:
//!
//! * a worker panic at window `k` is isolated to window `k`;
//! * a feeder fault (error or panic) ends the stream in order, without
//!   losing windows that were already fed;
//! * a delivery-side panic shuts the pipeline down cleanly and resurfaces
//!   to the caller;
//! * a lost arena-return channel degrades to extra allocations, never to
//!   wrong output.
//!
//! The registry is process-global, so every scenario runs as a sequential
//! phase of one `#[test]` — parallel test threads would race on the armed
//! failpoint names.

#![cfg(feature = "fault-injection")]

use moche_core::fault::{self, Fault};
use moche_core::{
    BatchExplainer, MocheError, ReferenceIndex, SortedReference, StreamResult,
    StreamingBatchExplainer, WindowReport,
};

fn setup(count: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let reference: Vec<f64> = (0..200u32).map(|i| f64::from(i % 10)).collect();
    let windows: Vec<Vec<f64>> = (0..count)
        .map(|w| (0..50).map(|i| f64::from(((i + w) % 7) as u32) + 5.0).collect())
        .collect();
    (reference, windows)
}

fn collect_stream(
    streamer: &StreamingBatchExplainer,
    index: &ReferenceIndex,
    windows: &[Vec<f64>],
) -> Vec<StreamResult> {
    let mut out = Vec::new();
    streamer.explain_stream(index, windows.to_vec(), None, |r| out.push(r));
    out
}

#[test]
fn injected_faults_are_contained() {
    let (reference, windows) = setup(12);
    let shared = SortedReference::new(&reference).unwrap();
    let index = ReferenceIndex::new(&reference).unwrap();

    // Clean baselines to diff every faulted run against.
    let batch_clean =
        BatchExplainer::new(0.05).unwrap().threads(1).explain_windows(&shared, &windows, None);
    let stream_clean = collect_stream(
        &StreamingBatchExplainer::new(0.05).unwrap().threads(1).buffer(2),
        &index,
        &windows,
    );

    batch_worker_panic_hits_only_window_k(&shared, &windows, &batch_clean);
    batch_parallel_worker_panic_hits_exactly_one_window(&shared, &windows, &batch_clean);
    stream_worker_panic_hits_only_window_k(&index, &windows, &stream_clean);
    feeder_error_ends_the_stream_in_order(&index, &windows, &stream_clean);
    feeder_panic_is_contained_as_end_of_stream(&index, &windows, &stream_clean);
    delivery_panic_resurfaces_after_clean_shutdown(&index, &windows);
    lost_arena_returns_degrade_without_changing_output(&index, &windows, &stream_clean);
}

/// Acceptance criterion: a panic injected at window `k` of a batch run
/// yields `WorkerPanicked` for window `k` and *only* window `k`.
fn batch_worker_panic_hits_only_window_k(
    shared: &SortedReference,
    windows: &[Vec<f64>],
    clean: &[Result<moche_core::Explanation, MocheError>],
) {
    let k = 5;
    // Sequential execution visits windows in order, so skipping `k` hits
    // targets exactly window `k`.
    fault::arm("batch.worker", Fault::Panic, k, 1);
    let results =
        BatchExplainer::new(0.05).unwrap().threads(1).explain_windows(shared, windows, None);
    fault::disarm("batch.worker");

    for (i, (got, want)) in results.iter().zip(clean).enumerate() {
        if i == k {
            match got {
                Err(MocheError::WorkerPanicked { window, message }) => {
                    assert_eq!(*window, k);
                    assert!(message.contains("batch.worker"), "message: {message}");
                }
                other => panic!("window {k} must report the injected panic, got {other:?}"),
            }
        } else {
            assert_eq!(got, want, "window {i} must be untouched by the fault");
        }
    }
}

/// On the multi-worker path the hit order races across threads, so the
/// fault targets "some one window": exactly one slot reports the panic
/// (naming its own index) and every other slot matches the clean run.
fn batch_parallel_worker_panic_hits_exactly_one_window(
    shared: &SortedReference,
    windows: &[Vec<f64>],
    clean: &[Result<moche_core::Explanation, MocheError>],
) {
    fault::arm("batch.worker", Fault::Panic, 0, 1);
    let results =
        BatchExplainer::new(0.05).unwrap().threads(4).explain_windows(shared, windows, None);
    fault::disarm("batch.worker");

    let mut panicked = 0usize;
    for (i, (got, want)) in results.iter().zip(clean).enumerate() {
        match got {
            Err(MocheError::WorkerPanicked { window, .. }) => {
                assert_eq!(*window, i, "the error must name its own window");
                panicked += 1;
            }
            other => assert_eq!(other, want, "window {i} must be untouched by the fault"),
        }
    }
    assert_eq!(panicked, 1, "one injected panic must cost exactly one window");
}

fn stream_worker_panic_hits_only_window_k(
    index: &ReferenceIndex,
    windows: &[Vec<f64>],
    clean: &[StreamResult],
) {
    let k = 7;
    fault::arm("stream.worker", Fault::Panic, k, 1);
    let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(1).buffer(2);
    let mut results = Vec::new();
    let summary = streamer.explain_stream(index, windows.to_vec(), None, |r| results.push(r));
    fault::disarm("stream.worker");

    assert_eq!(summary.windows, windows.len());
    assert_eq!(summary.panics, 1);
    assert_eq!(summary.errors, 1);
    for (i, (got, want)) in results.iter().zip(clean).enumerate() {
        assert_eq!(got.window, i, "delivery must stay in window order");
        if i == k {
            match &got.result {
                Err(MocheError::WorkerPanicked { window, message }) => {
                    assert_eq!(*window, k);
                    assert!(message.contains("stream.worker"), "message: {message}");
                }
                other => panic!("window {k} must report the injected panic, got {other:?}"),
            }
        } else {
            assert_eq!(got, want, "window {i} must be untouched by the fault");
        }
    }
}

/// `Fault::Error` at the feeder failpoint models an upstream source that
/// dies mid-stream: the run ends after the windows already fed, delivered
/// in order, on both the sequential and the parallel path.
fn feeder_error_ends_the_stream_in_order(
    index: &ReferenceIndex,
    windows: &[Vec<f64>],
    clean: &[StreamResult],
) {
    let fed = 4;
    for threads in [1usize, 3] {
        fault::arm("stream.feeder", Fault::Error, fed, usize::MAX);
        let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(threads).buffer(2);
        let mut results = Vec::new();
        let summary = streamer.explain_stream(index, windows.to_vec(), None, |r| results.push(r));
        fault::disarm("stream.feeder");

        assert_eq!(summary.windows, fed, "threads = {threads}");
        assert_eq!(results.len(), fed);
        assert_eq!(results, clean[..fed], "threads = {threads}");
    }
}

/// A *panicking* feeder (the source closure is caller code) is contained
/// by the parallel pipeline as end-of-stream rather than tearing down the
/// scope: every window fed before the panic is still delivered in order.
fn feeder_panic_is_contained_as_end_of_stream(
    index: &ReferenceIndex,
    windows: &[Vec<f64>],
    clean: &[StreamResult],
) {
    let fed = 6;
    fault::arm("stream.feeder", Fault::Panic, fed, 1);
    let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(3).buffer(2);
    let mut results = Vec::new();
    let summary = streamer.explain_stream(index, windows.to_vec(), None, |r| results.push(r));
    fault::disarm("stream.feeder");

    assert_eq!(summary.windows, fed);
    assert_eq!(results, clean[..fed]);
}

/// A panic on the delivery side (reorder ring / caller's sink) cannot be
/// swallowed — it is the caller's own bug — but it must not strand the
/// feeder or the workers either: the pipeline winds down every thread,
/// then re-raises the payload.
fn delivery_panic_resurfaces_after_clean_shutdown(index: &ReferenceIndex, windows: &[Vec<f64>]) {
    fault::arm("stream.reorder", Fault::Panic, 3, 1);
    let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(3).buffer(2);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        streamer.explain_stream(index, windows.to_vec(), None, |_| {});
    }));
    fault::disarm("stream.reorder");

    let payload = outcome.expect_err("the delivery panic must reach the caller");
    let message = fault::panic_message(payload.as_ref());
    assert!(message.contains("stream.reorder"), "message: {message}");
    // Reaching this line at all is the liveness half of the assertion:
    // the thread scope joined instead of deadlocking on full channels.
}

/// Dropping every arena instead of returning it to the workers costs
/// allocations, not correctness: output must be bit-identical.
fn lost_arena_returns_degrade_without_changing_output(
    index: &ReferenceIndex,
    windows: &[Vec<f64>],
    clean: &[StreamResult],
) {
    fault::arm("stream.arena_return", Fault::Error, 0, usize::MAX);
    let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(3).buffer(2);
    let mut results = Vec::new();
    let summary = streamer.explain_source(
        index,
        {
            let mut i = 0usize;
            move |buf: &mut Vec<f64>| {
                let Some(w) = windows.get(i) else { return false };
                buf.clear();
                buf.extend_from_slice(w);
                i += 1;
                true
            }
        },
        None,
        |r| results.push(r.clone()),
    );
    fault::disarm("stream.arena_return");

    assert_eq!(summary.windows, windows.len());
    assert_eq!(results, clean);
    assert!(results.iter().all(|r| matches!(r.result, Ok(WindowReport::Explained(_)))));
}
