//! Property-based oracle tests: MOCHE against the brute-force reference on
//! randomly generated small instances, plus invariants of the bound
//! machinery.

use moche_core::base_vector::BaseVector;
use moche_core::bounds::BoundsContext;
use moche_core::brute_force::{
    brute_force_explain, exists_qualified_exhaustive, removal_reverses, BruteForceLimits,
};
use moche_core::cumulative::SubsetCounts;
use moche_core::ks::KsConfig;
use moche_core::moche::{ConstructionStrategy, Moche};
use moche_core::phase1;
use moche_core::preference::PreferenceList;
use moche_core::MocheError;
use proptest::prelude::*;

/// Small integer-valued samples create plenty of ties, which is the hard
/// case for the cumulative-vector machinery. The test set is drawn from a
/// shifted range so most generated instances actually fail the KS test
/// (small samples have large thresholds, so unshifted instances almost
/// always pass and would starve `prop_assume`).
fn small_instance() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    let value = 0i32..8;
    (
        proptest::collection::vec(value.clone(), 6..20),
        proptest::collection::vec(value, 4..10),
        3i32..7,
    )
        .prop_map(|(r, t, shift)| {
            (
                r.into_iter().map(f64::from).collect(),
                t.into_iter().map(|v| f64::from(v + shift)).collect(),
            )
        })
}

fn alphas() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.05), Just(0.1), Just(0.2), Just(0.25)]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 192,
        max_global_rejects: 8192,
        ..ProptestConfig::default()
    })]

    #[test]
    fn moche_matches_brute_force((r, t) in small_instance(), alpha in alphas(), seed in 0u64..1000) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);

        let pref = PreferenceList::random(t.len(), seed);
        let moche = Moche::new(alpha).unwrap();
        let fast = moche.explain(&r, &t, &pref).unwrap();
        let slow = brute_force_explain(&r, &t, &cfg, &pref, BruteForceLimits::default()).unwrap();

        // Identical explanations: same size, same index set.
        let mut a = fast.indices().to_vec();
        let mut b = slow.indices.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "pref = {:?}", pref.as_order());
    }

    #[test]
    fn explanation_reverses_and_is_minimal((r, t) in small_instance(), alpha in alphas()) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);

        let moche = Moche::new(alpha).unwrap();
        let pref = PreferenceList::identity(t.len());
        let e = moche.explain(&r, &t, &pref).unwrap();

        // Removing the explanation reverses the failed test.
        prop_assert!(e.outcome_after.passes());
        prop_assert!(removal_reverses(&base, &cfg, e.indices()));

        // Minimality: no subset of size k - 1 reverses the test.
        if e.size() > 1 {
            let smaller =
                exists_qualified_exhaustive(&base, &cfg, e.size() - 1, 2_000_000).unwrap();
            prop_assert!(!smaller, "a ({})-subset also reverses the test", e.size() - 1);
        }
    }

    #[test]
    fn theorem1_matches_exhaustive_search((r, t) in small_instance(), alpha in alphas()) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        for h in 1..t.len() {
            let fast = ctx.exists_qualified(h);
            let slow = exists_qualified_exhaustive(&base, &cfg, h, 2_000_000).unwrap();
            prop_assert_eq!(fast, slow, "h = {}", h);
        }
    }

    #[test]
    fn theorem2_is_monotone_and_lower_bounds_k((r, t) in small_instance(), alpha in alphas()) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);

        // Monotonicity of the necessary condition.
        let mut seen_true = false;
        for h in 1..t.len() {
            let ok = ctx.necessary_condition(h);
            if seen_true {
                prop_assert!(ok, "monotonicity violated at h = {}", h);
            }
            seen_true |= ok;
        }

        // k_hat <= k whenever the test fails and an explanation exists.
        if base.outcome(&cfg).rejected {
            match phase1::find_size(&ctx, alpha) {
                Ok(s) => {
                    prop_assert!(s.k_hat <= s.k);
                    prop_assert!(ctx.exists_qualified(s.k));
                    if s.k > 1 {
                        prop_assert!(!ctx.exists_qualified(s.k - 1) || s.k == s.k_hat);
                    }
                }
                Err(MocheError::NoExplanation { .. }) => {
                    // Only legal above the existence guarantee.
                    prop_assert!(!cfg.existence_guaranteed());
                }
                Err(other) => prop_assert!(false, "unexpected error {:?}", other),
            }
        }
    }

    #[test]
    fn incremental_and_reference_construction_agree(
        (r, t) in small_instance(),
        alpha in alphas(),
        seed in 0u64..1000,
    ) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);

        let pref = PreferenceList::random(t.len(), seed);
        let a = Moche::new(alpha).unwrap();
        let b = a.construction(ConstructionStrategy::Reference);
        let ea = a.explain(&r, &t, &pref).unwrap();
        let eb = b.explain(&r, &t, &pref).unwrap();
        prop_assert_eq!(ea.indices(), eb.indices());
    }

    #[test]
    fn witness_construction_is_sound((r, t) in small_instance(), alpha in alphas()) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        for h in 1..t.len() {
            if let Some(w) = ctx.construct_witness(h) {
                prop_assert!(w.is_subset_of_test(&base));
                prop_assert_eq!(w.subset_size(), h as u64);
                let counts = w.counts();
                let outcome = base.outcome_after_removal(counts.as_slice(), &cfg);
                prop_assert!(outcome.passes(), "witness at h = {} fails", h);
            }
        }
    }

    #[test]
    fn explanation_is_lex_minimal_among_equal_size(
        (r, t) in small_instance(),
        alpha in alphas(),
        seed in 0u64..1000,
    ) {
        // Cross-check Definition 2 directly: enumerate all k-subsets and
        // verify none that reverses the test lex-precedes MOCHE's answer.
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);
        prop_assume!(t.len() <= 9);

        let pref = PreferenceList::random(t.len(), seed);
        let moche = Moche::new(alpha).unwrap();
        let e = moche.explain(&r, &t, &pref).unwrap();
        let k = e.size();
        prop_assume!(k <= 5);

        // Enumerate k-subsets of indices.
        let m = t.len();
        let mut idxs: Vec<usize> = (0..k).collect();
        loop {
            let subset: Vec<usize> = idxs.clone();
            if removal_reverses(&base, &cfg, &subset) {
                use std::cmp::Ordering;
                let cmp = pref.lex_cmp(&subset, e.indices());
                prop_assert!(
                    cmp != Ordering::Less,
                    "{:?} lex-precedes MOCHE's {:?}",
                    subset,
                    e.indices()
                );
            }
            // next combination
            let mut i = k;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if idxs[i] != i + m - k {
                    break;
                }
                if i == 0 {
                    break;
                }
            }
            if idxs[i] == i + m - k {
                break;
            }
            idxs[i] += 1;
            for j in i + 1..k {
                idxs[j] = idxs[j - 1] + 1;
            }
        }
    }

    #[test]
    fn subset_counts_roundtrip((r, t) in small_instance(), seed in 0u64..100) {
        let base = BaseVector::build(&r, &t).unwrap();
        // Random subset of test indices.
        let pref = PreferenceList::random(t.len(), seed);
        let take = t.len() / 2;
        let indices: Vec<usize> = pref.as_order()[..take].to_vec();
        let counts = SubsetCounts::from_test_indices(&base, &indices);
        prop_assert_eq!(counts.total() as usize, take);
        let cum = counts.cumulative();
        prop_assert_eq!(cum.counts(), counts);
        prop_assert!(cum.is_subset_of_test(&base));
        let materialized = cum.materialize_indices(&base, t.len()).unwrap();
        prop_assert_eq!(materialized.len(), take);
        // Same multiset of values.
        let mut v1: Vec<f64> = indices.iter().map(|&i| t[i]).collect();
        let mut v2: Vec<f64> = materialized.iter().map(|&i| t[i]).collect();
        v1.sort_by(f64::total_cmp);
        v2.sort_by(f64::total_cmp);
        prop_assert_eq!(v1, v2);
    }

    #[test]
    fn statistic_after_removal_consistent_with_direct((r, t) in small_instance(), seed in 0u64..100) {
        let base = BaseVector::build(&r, &t).unwrap();
        let pref = PreferenceList::random(t.len(), seed);
        let take = (t.len() - 1) / 2;
        let indices: Vec<usize> = pref.as_order()[..take].to_vec();
        let counts = SubsetCounts::from_test_indices(&base, &indices);

        let mut t_after = Vec::new();
        let mut removed = vec![false; t.len()];
        for &i in &indices {
            removed[i] = true;
        }
        for (i, &v) in t.iter().enumerate() {
            if !removed[i] {
                t_after.push(v);
            }
        }
        let direct = moche_core::ks_statistic(&r, &t_after).unwrap();
        let viacum = base.statistic_after_removal(counts.as_slice());
        prop_assert!((direct - viacum).abs() < 1e-12, "direct {} vs cum {}", direct, viacum);
    }
}
