//! Property tests pinning the vectorized Phase-1 machinery to its scalar
//! references:
//!
//! * the Theorem-2 necessary condition is **monotone in `h`** — the
//!   soundness premise of both the binary search and the wavefront search;
//! * the fused multi-probe kernel (`necessary_condition_multi`) returns
//!   exactly the scalar verdicts;
//! * the wavefront size search returns identical `k` and `k̂` to the
//!   scalar binary-search path;
//! * the branchless f64-domain kernels (`exists_qualified`,
//!   `compute_into`) return identical verdicts and identical `HBounds`
//!   vectors to the allocating rounding-path reference (`compute`).
//!
//! The instance strategy deliberately includes signed zeros, heavy
//! duplicate ties and near-integer values that sit within `eps` of the
//! ceil/floor rounding boundaries — the adversarial cases for the
//! f64-domain equivalence argued in `bounds.rs`.

use moche_core::base_vector::BaseVector;
use moche_core::bounds::{BoundsContext, BoundsWorkspace, MAX_WAVEFRONT};
use moche_core::ks::KsConfig;
use moche_core::phase1::{find_size, find_size_wavefront, lower_bound, lower_bound_wavefront};
use proptest::prelude::*;

/// Sample values stressing every equivalence edge: a small integer grid
/// (ties/duplicates), signed zeros, and values a hair away from integers so
/// `Γ ± Ω ± ε` lands near rounding boundaries.
fn adversarial_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        (0i32..6).prop_map(f64::from),
        Just(0.0),
        Just(-0.0),
        (0i32..6).prop_map(|v| f64::from(v) + 1e-12),
        (1i32..6).prop_map(|v| f64::from(v) - 1e-12),
        (0i32..6).prop_map(|v| f64::from(v) + 0.5),
    ]
}

fn instance() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, i32)> {
    (
        proptest::collection::vec(adversarial_value(), 6..40),
        proptest::collection::vec(adversarial_value(), 4..24),
        0i32..5,
    )
}

fn alphas() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.05), Just(0.1), Just(0.25)]
}

/// Shift the test sample so a healthy share of generated instances fail
/// the KS test instead of starving `prop_assume`.
fn build(r: &[f64], t: &[f64], shift: i32) -> BaseVector {
    let t: Vec<f64> = t.iter().map(|&v| v + f64::from(shift)).collect();
    BaseVector::build(r, &t).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 160,
        max_global_rejects: 16384,
        ..ProptestConfig::default()
    })]

    #[test]
    fn necessary_condition_is_monotone_in_h(
        (r, t, shift) in instance(),
        alpha in alphas(),
    ) {
        let base = build(&r, &t, shift);
        let cfg = KsConfig::new(alpha).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let mut seen_true = false;
        for h in 1..base.m() {
            let ok = ctx.necessary_condition(h);
            if seen_true {
                prop_assert!(ok, "monotonicity violated at h = {}", h);
            }
            seen_true |= ok;
        }
    }

    #[test]
    fn multi_probe_kernel_matches_scalar(
        (r, t, shift) in instance(),
        alpha in alphas(),
        width in 1usize..=MAX_WAVEFRONT,
    ) {
        let base = build(&r, &t, shift);
        prop_assume!(base.m() >= 2);
        let cfg = KsConfig::new(alpha).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let hs: Vec<usize> = (0..width).map(|j| 1 + j * (base.m() - 2) / width).collect();
        let mut ok = vec![false; width];
        ctx.necessary_condition_multi(&hs, &mut ok);
        for (&h, &got) in hs.iter().zip(&ok) {
            prop_assert_eq!(got, ctx.necessary_condition(h), "h = {}", h);
        }
    }

    #[test]
    fn wavefront_lower_bound_matches_scalar(
        (r, t, shift) in instance(),
        alpha in alphas(),
    ) {
        let base = build(&r, &t, shift);
        let cfg = KsConfig::new(alpha).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let (scalar, _) = lower_bound(&ctx);
        let (wave, _) = lower_bound_wavefront(&ctx);
        prop_assert_eq!(wave, scalar);
    }

    #[test]
    fn wavefront_find_size_matches_scalar_on_failing_tests(
        (r, t, shift) in instance(),
        alpha in alphas(),
    ) {
        let base = build(&r, &t, shift);
        let cfg = KsConfig::new(alpha).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);
        let ctx = BoundsContext::new(&base, &cfg);
        match (find_size(&ctx, alpha), find_size_wavefront(&ctx, alpha)) {
            (Ok(s), Ok(w)) => {
                prop_assert_eq!(w.k, s.k);
                prop_assert_eq!(w.k_hat, s.k_hat);
                prop_assert_eq!(w.theorem1_checks, s.theorem1_checks);
            }
            (Err(_), Err(_)) => {}
            other => return Err(TestCaseError::fail(format!("divergence: {other:?}"))),
        }
    }

    #[test]
    fn branchless_kernels_match_rounding_path_reference(
        (r, t, shift) in instance(),
        alpha in alphas(),
    ) {
        let base = build(&r, &t, shift);
        let cfg = KsConfig::new(alpha).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let mut ws = BoundsWorkspace::new();
        for h in 1..base.m() {
            // `compute` is the untouched scalar rounding-path reference.
            let reference = ctx.compute(h);
            prop_assert_eq!(
                ctx.exists_qualified(h), reference.feasible,
                "exists_qualified diverged at h = {}", h
            );
            let feasible = ctx.compute_into(h, &mut ws);
            prop_assert_eq!(feasible, reference.feasible, "h = {}", h);
            prop_assert_eq!(ws.to_hbounds(), reference, "h = {}", h);
        }
    }

    #[test]
    fn near_eps_boundaries_keep_kernels_in_agreement(
        (r, t, shift) in instance(),
        eps_exp in 0u32..4,
    ) {
        // Sweep eps through magnitudes that straddle the 1e-12 offsets the
        // value strategy plants next to integers, so some coordinates flip
        // between "within tolerance" and "outside tolerance".
        let eps = [0.0, 1e-13, 1e-11, 1e-9][eps_exp as usize];
        let base = build(&r, &t, shift);
        let cfg = KsConfig::new(0.1).unwrap().with_eps(eps);
        let ctx = BoundsContext::new(&base, &cfg);
        for h in 1..base.m() {
            let reference = ctx.compute(h);
            prop_assert_eq!(ctx.exists_qualified(h), reference.feasible, "h = {}", h);
            prop_assert_eq!(
                ctx.necessary_condition(h),
                {
                    let mut ok = [false];
                    ctx.necessary_condition_multi(&[h], &mut ok);
                    ok[0]
                },
                "multi vs scalar at h = {}", h
            );
        }
        let (scalar, _) = lower_bound(&ctx);
        let (wave, _) = lower_bound_wavefront(&ctx);
        prop_assert_eq!(wave, scalar, "wavefront vs scalar near eps boundaries");
    }
}
