//! Equivalence properties for the scratch-reuse engine and the batch API:
//! on random failing `(R, T, alpha, preference)` instances, both must
//! return explanations byte-identical to the allocating `Reference`
//! construction path — same indices (same order), same `k`, same `k_hat`,
//! same outcomes.

use moche_core::base_vector::BaseVector;
use moche_core::batch::{BatchExplainer, BatchJob};
use moche_core::ks::KsConfig;
use moche_core::moche::{ConstructionStrategy, Moche};
use moche_core::preference::PreferenceList;
use moche_core::{ExplainEngine, SortedReference};
use proptest::prelude::*;

/// Small integer-valued samples with a shift, so most instances fail the
/// KS test (cf. `proptest_core.rs`).
fn small_instance() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    let value = 0i32..8;
    (
        proptest::collection::vec(value.clone(), 6..24),
        proptest::collection::vec(value, 4..12),
        3i32..7,
    )
        .prop_map(|(r, t, shift)| {
            (
                r.into_iter().map(f64::from).collect(),
                t.into_iter().map(|v| f64::from(v + shift)).collect(),
            )
        })
}

fn alphas() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.05), Just(0.1), Just(0.2), Just(0.25)]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        max_global_rejects: 8192,
        ..ProptestConfig::default()
    })]

    #[test]
    fn engine_is_byte_identical_to_reference(
        (r, t) in small_instance(),
        alpha in alphas(),
        seed in 0u64..1000,
    ) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);

        let pref = PreferenceList::random(t.len(), seed);
        let reference = Moche::new(alpha).unwrap().construction(ConstructionStrategy::Reference);
        let expected = reference.explain(&r, &t, &pref).unwrap();

        let mut engine = ExplainEngine::new(alpha).unwrap();
        // Warm the workspace on an unrelated instance first: reuse must not
        // leak state between calls.
        let _ = engine.explain(&r, &t, &PreferenceList::identity(t.len()));
        let got = engine.explain(&r, &t, &pref).unwrap();

        prop_assert_eq!(got.indices(), expected.indices());
        prop_assert_eq!(got.values(), expected.values());
        prop_assert_eq!(got.phase1.k, expected.phase1.k);
        prop_assert_eq!(got.phase1.k_hat, expected.phase1.k_hat);
        prop_assert_eq!(got.outcome_before, expected.outcome_before);
        prop_assert_eq!(got.outcome_after, expected.outcome_after);
    }

    #[test]
    fn batch_jobs_are_byte_identical_to_reference(
        (r, t) in small_instance(),
        alpha in alphas(),
        seed in 0u64..1000,
    ) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);

        // A batch of window variants of the same instance: the original,
        // a rotation, and a copy — each with its own preference.
        let mut t2 = t.clone();
        t2.rotate_left(t.len() / 2);
        let windows = [t.clone(), t2, t.clone()];
        let prefs: Vec<PreferenceList> = (0..windows.len() as u64)
            .map(|i| PreferenceList::random(t.len(), seed ^ i))
            .collect();
        let jobs: Vec<BatchJob<'_>> = windows
            .iter()
            .zip(&prefs)
            .map(|(w, p)| BatchJob { reference: &r, test: w, preference: Some(p) })
            .collect();

        let batch = BatchExplainer::new(alpha).unwrap().threads(3);
        let results = batch.explain_jobs(&jobs);

        let reference = Moche::new(alpha).unwrap().construction(ConstructionStrategy::Reference);
        for ((w, p), result) in windows.iter().zip(&prefs).zip(&results) {
            match (reference.explain(&r, w, p), result) {
                (Ok(expected), Ok(got)) => {
                    prop_assert_eq!(got.indices(), expected.indices());
                    prop_assert_eq!(got.phase1.k, expected.phase1.k);
                    prop_assert_eq!(got.phase1.k_hat, expected.phase1.k_hat);
                    prop_assert_eq!(&got.outcome_after, &expected.outcome_after);
                }
                (Err(expected), Err(got)) => prop_assert_eq!(got, &expected),
                (expected, got) => {
                    prop_assert!(false, "divergence: {:?} vs {:?}", expected, got);
                }
            }
        }
    }

    #[test]
    fn shared_reference_windows_are_byte_identical(
        (r, t) in small_instance(),
        alpha in alphas(),
        seed in 0u64..1000,
    ) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);

        let mut t2 = t.clone();
        t2.reverse();
        let windows = [t.clone(), t2];
        let prefs: Vec<PreferenceList> = (0..windows.len() as u64)
            .map(|i| PreferenceList::random(t.len(), seed.wrapping_add(i)))
            .collect();

        let shared = SortedReference::new(&r).unwrap();
        let batch = BatchExplainer::new(alpha).unwrap().threads(2);
        let results = batch.explain_windows(&shared, &windows, Some(&prefs));

        let reference = Moche::new(alpha).unwrap().construction(ConstructionStrategy::Reference);
        for ((w, p), result) in windows.iter().zip(&prefs).zip(&results) {
            let expected = reference.explain(&r, w, p).unwrap();
            let got = result.as_ref().unwrap();
            prop_assert_eq!(got.indices(), expected.indices());
            prop_assert_eq!(got.values(), expected.values());
            prop_assert_eq!(got.phase1.k, expected.phase1.k);
            prop_assert_eq!(got.phase1.k_hat, expected.phase1.k_hat);
            prop_assert_eq!(&got.outcome_after, &expected.outcome_after);
        }
    }

    #[test]
    fn size_profile_reuse_matches_per_level_contexts(
        (r, t) in small_instance(),
        alpha in alphas(),
    ) {
        // The ctx-reusing sweep must agree with building everything fresh
        // at each level.
        let levels = [0.01, 0.05, 0.1, 0.2, 0.25];
        let mut engine = ExplainEngine::new(alpha).unwrap();
        let profile = engine.size_profile(&r, &t, &levels).unwrap();
        for (level, result) in profile {
            let fresh = Moche::new(level).unwrap();
            match (fresh.explanation_size(&r, &t), result) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "alpha = {}", level),
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "alpha = {}", level),
                (a, b) => prop_assert!(false, "divergence at {}: {:?} vs {:?}", level, a, b),
            }
        }
    }
}
