//! Allocation-count gates for the zero-allocation guarantees.
//!
//! Each integration-test binary owns its process, so this file installs a
//! counting global allocator and asserts the *marginal* allocation cost of
//! the warm paths is exactly zero: a long and a short run pay the identical
//! warm-up (buffer growth, engine construction), so the difference divided
//! by the extra iterations is the true steady state.
//!
//! The counter is process-global and libtest runs sibling test threads
//! concurrently (whose harness activity would pollute a measurement
//! window), so this binary contains exactly ONE #[test]: the three gates
//! run as sequential phases inside it.

use moche_core::{
    ExplainEngine, ExplanationArena, PreferenceList, ReferenceIndex, ScoreIntoFn,
    StreamingBatchExplainer, WindowSource,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a counter bump; every
// `GlobalAlloc` contract obligation is discharged by `System` itself.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; the caller upholds `alloc`'s contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; `ptr` came from this allocator, which
        // delegates all allocation to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; `ptr` came from this allocator, which
        // delegates all allocation to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn failing_setup() -> (Vec<f64>, Vec<Vec<f64>>) {
    let reference: Vec<f64> = (0..400u32).map(|i| f64::from(i % 10)).collect();
    let windows: Vec<Vec<f64>> =
        (0..8).map(|w| (0..120).map(|i| f64::from(((i + w) % 7) as u32) + 5.0).collect()).collect();
    (reference, windows)
}

/// A slice-backed cycling [`WindowSource`] that copies into the recycled
/// buffer — the zero-allocation producer shape.
fn cycling_source(windows: &[Vec<f64>], count: usize) -> impl WindowSource + Send + '_ {
    let mut i = 0usize;
    move |buf: &mut Vec<f64>| {
        if i >= count {
            return false;
        }
        buf.clear();
        buf.extend_from_slice(&windows[i % windows.len()]);
        i += 1;
        true
    }
}

#[test]
fn zero_allocation_gates_run_sequentially() {
    warm_indexed_arena_explain_allocates_nothing();
    scored_stream_allocates_nothing_when_warm();
    identity_stream_allocates_nothing_when_warm_single_core();
}

fn warm_indexed_arena_explain_allocates_nothing() {
    let (reference, windows) = failing_setup();
    let index = ReferenceIndex::new(&reference).unwrap();
    let mut engine = ExplainEngine::new(0.05).unwrap();
    let mut arena = ExplanationArena::new();
    let pref = PreferenceList::identity(windows[0].len());
    // Warm every buffer (engine scratch, arena storage, base splice).
    for w in &windows {
        let e = engine.explain_with_index_in(&index, w, &pref, &mut arena).unwrap();
        arena.recycle(e);
    }
    // This phase runs right after process start, and the counter is
    // process-global: libtest's main thread can still be allocating
    // (one-shot startup work) concurrently with the first measurement
    // window. Retry to tell that noise from a real leak — a per-window
    // regression allocates on every attempt and still fails.
    let mut allocated = u64::MAX;
    for _ in 0..3 {
        let before = allocations();
        for _ in 0..3 {
            for w in &windows {
                let e = engine.explain_with_index_in(&index, w, &pref, &mut arena).unwrap();
                arena.recycle(e);
            }
        }
        allocated = allocations() - before;
        if allocated == 0 {
            break;
        }
    }
    assert_eq!(allocated, 0, "warm explain_with_index_in must not allocate");
}

fn scored_stream_allocates_nothing_when_warm() {
    let (reference, windows) = failing_setup();
    let index = ReferenceIndex::new(&reference).unwrap();
    let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(1).buffer(4);
    // Score each window by its own values: the callback writes into the
    // worker-recycled PreferenceList and allocates nothing itself.
    let score: ScoreIntoFn<'_> = &|_, w, pref| pref.fill_from_scores_desc(w);
    let run = |count: usize| {
        let before = allocations();
        let summary =
            streamer.explain_source_scored(&index, cycling_source(&windows, count), score, |r| {
                assert!(r.result.is_ok());
            });
        assert_eq!(summary.windows, count);
        allocations() - before
    };
    let (short, long) = (12u64, 48u64);
    run(short as usize); // prime one-time lazy state
    let allocs_short = run(short as usize);
    let allocs_long = run(long as usize);
    assert_eq!(
        allocs_long.saturating_sub(allocs_short),
        0,
        "scored streams must join the zero-allocation steady state \
         (short run: {allocs_short}, long run: {allocs_long})"
    );
}

fn identity_stream_allocates_nothing_when_warm_single_core() {
    let (reference, windows) = failing_setup();
    let index = ReferenceIndex::new(&reference).unwrap();
    let streamer = StreamingBatchExplainer::new(0.05).unwrap().threads(1).buffer(4);
    let run = |count: usize| {
        let before = allocations();
        let summary = streamer.explain_source(&index, cycling_source(&windows, count), None, |r| {
            assert!(r.result.is_ok());
        });
        assert_eq!(summary.windows, count);
        allocations() - before
    };
    run(12);
    let allocs_short = run(12);
    let allocs_long = run(48);
    assert_eq!(
        allocs_long.saturating_sub(allocs_short),
        0,
        "single-core streaming steady state must stay allocation-free \
         (short run: {allocs_short}, long run: {allocs_long})"
    );
}
