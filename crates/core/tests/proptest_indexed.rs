//! Equivalence properties for the indexed-reference paths: on random
//! instances, base vectors spliced into a [`ReferenceIndex`], the Phase-1
//! size `k`, the final explanations, and the streaming engine's output
//! must all be byte-identical to the merged [`BaseVector::build`] path.

use moche_core::base_vector::BaseVector;
use moche_core::batch::{BatchExplainer, ReferenceMode};
use moche_core::ks::KsConfig;
use moche_core::moche::{ConstructionStrategy, Moche};
use moche_core::preference::PreferenceList;
use moche_core::{
    ExplainEngine, ExplanationArena, IncrementalRefIndex, ReferenceIndex, SortedReference,
    StreamMode, StreamingBatchExplainer, WindowReport,
};
use proptest::prelude::*;

/// Random samples with duplicates and overlap: integer-valued grids plus a
/// shift, plus occasional fractional values so shared-and-disjoint value
/// mixes are both common.
fn instance() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    let r_value = 0i32..12;
    let t_value = 0i32..12;
    (
        proptest::collection::vec(r_value, 6..40),
        proptest::collection::vec(t_value, 4..16),
        0i32..8,
        0i32..2,
    )
        .prop_map(|(r, t, shift, halves)| {
            let scale = if halves == 1 { 0.5 } else { 1.0 };
            (
                r.into_iter().map(|v| f64::from(v) * scale).collect(),
                t.into_iter().map(|v| (f64::from(v + shift)) * scale).collect(),
            )
        })
}

fn alphas() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.05), Just(0.1), Just(0.2), Just(0.25)]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        max_global_rejects: 8192,
        ..ProptestConfig::default()
    })]

    // The tentpole invariant: `build_with_index` is byte-identical to the
    // merged `build` on any valid input (no KS-failure assumption needed —
    // this is pure construction).
    #[test]
    fn indexed_base_vector_is_byte_identical((r, t) in instance()) {
        let index = ReferenceIndex::new(&r).unwrap();
        let merged = BaseVector::build(&r, &t).unwrap();
        let indexed = BaseVector::build_with_index(&index, &t).unwrap();
        prop_assert_eq!(&indexed, &merged);
        // PartialEq on f64 treats -0.0 == 0.0; pin the raw bits too.
        let bits = |b: &BaseVector| b.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&indexed), bits(&merged));
        // And the index's rank query agrees with the cumulative counts.
        for (i, &v) in merged.values().iter().enumerate() {
            prop_assert_eq!(index.rank(v), merged.c_r(i + 1));
        }
    }

    // Phase-1 `k` (and `k_hat`) computed through the index equals the
    // merged path's.
    #[test]
    fn indexed_phase1_size_is_identical((r, t) in instance(), alpha in alphas()) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);

        let expected = Moche::new(alpha).unwrap().explanation_size(&r, &t).unwrap();
        let index = ReferenceIndex::new(&r).unwrap();
        let mut engine = ExplainEngine::new(alpha).unwrap();
        let got = engine.size_with_index(&index, &t).unwrap();
        prop_assert_eq!(got, expected);
    }

    // Full explanations through the indexed engine path and the Indexed
    // batch mode equal the paper-faithful Reference construction.
    #[test]
    fn indexed_explanations_are_byte_identical(
        (r, t) in instance(),
        alpha in alphas(),
        seed in 0u64..1000,
    ) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);

        let pref = PreferenceList::random(t.len(), seed);
        let reference = Moche::new(alpha).unwrap().construction(ConstructionStrategy::Reference);
        let expected = reference.explain(&r, &t, &pref).unwrap();

        let index = ReferenceIndex::new(&r).unwrap();
        let mut engine = ExplainEngine::new(alpha).unwrap();
        let got = engine.explain_with_index(&index, &t, &pref).unwrap();
        prop_assert_eq!(got.indices(), expected.indices());
        prop_assert_eq!(got.values(), expected.values());
        prop_assert_eq!(got.phase1, expected.phase1);
        prop_assert_eq!(&got.outcome_after, &expected.outcome_after);

        let shared = SortedReference::new(&r).unwrap();
        let windows = [t.clone()];
        let prefs = [pref];
        let batch = BatchExplainer::new(alpha)
            .unwrap()
            .threads(2)
            .reference_mode(ReferenceMode::Indexed);
        let results = batch.explain_windows(&shared, &windows, Some(&prefs));
        let batched = results[0].as_ref().unwrap();
        prop_assert_eq!(batched.indices(), expected.indices());
        prop_assert_eq!(&batched.phase1, &expected.phase1);
    }

    // Arena-backed explains (recycled output buffers) are byte-identical
    // to the allocating path, across every entry point and with the arena
    // reused across calls.
    #[test]
    fn arena_explanations_are_byte_identical(
        (r, t) in instance(),
        alpha in alphas(),
        seed in 0u64..1000,
    ) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);

        let pref = PreferenceList::random(t.len(), seed);
        let mut allocating = ExplainEngine::new(alpha).unwrap();
        let expected_direct = allocating.explain(&r, &t, &pref).unwrap();
        let index = ReferenceIndex::new(&r).unwrap();
        let expected_indexed = allocating.explain_with_index(&index, &t, &pref).unwrap();
        let shared = SortedReference::new(&r).unwrap();

        let mut engine = ExplainEngine::new(alpha).unwrap();
        let mut arena = ExplanationArena::new();
        // Two rounds: the second one runs entirely on recycled storage.
        for round in 0..2 {
            for (entry, expected) in [
                (engine.explain_in(&r, &t, &pref, &mut arena), &expected_direct),
                (
                    engine.explain_with_reference_in(&shared, &t, &pref, &mut arena),
                    &expected_direct,
                ),
                (engine.explain_with_index_in(&index, &t, &pref, &mut arena), &expected_indexed),
            ] {
                let got = entry.unwrap();
                prop_assert_eq!(got.indices(), expected.indices(), "round {}", round);
                // PartialEq on f64 treats -0.0 == 0.0; pin the raw bits.
                let bits = |vs: &[f64]| vs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(got.values()), bits(expected.values()));
                prop_assert_eq!(&got.phase1, &expected.phase1);
                prop_assert_eq!(&got.phase2, &expected.phase2);
                prop_assert_eq!(&got.outcome_before, &expected.outcome_before);
                prop_assert_eq!(&got.outcome_after, &expected.outcome_after);
                prop_assert_eq!((got.n, got.m, got.q), (expected.n, expected.m, expected.q));
                arena.recycle(got);
            }
        }
    }

    // The streaming engine delivers, in order, exactly what the batch
    // engine computes — explanations and sizes alike.
    #[test]
    fn streaming_matches_batch(
        (r, t) in instance(),
        alpha in alphas(),
        threads in 1usize..4,
    ) {
        let cfg = KsConfig::new(alpha).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);

        let mut t2 = t.clone();
        t2.rotate_left(t.len() / 2);
        let windows = vec![t.clone(), t2, r.clone(), t.clone()];
        let shared = SortedReference::new(&r).unwrap();
        let expected = BatchExplainer::new(alpha).unwrap().explain_windows(&shared, &windows, None);

        let index = ReferenceIndex::new(&r).unwrap();
        let streamer =
            StreamingBatchExplainer::new(alpha).unwrap().threads(threads).buffer(2);
        let mut results = Vec::new();
        let summary =
            streamer.explain_stream(&index, windows.clone(), None, |res| results.push(res));
        prop_assert_eq!(summary.windows, windows.len());
        for (i, (res, exp)) in results.iter().zip(&expected).enumerate() {
            prop_assert_eq!(res.window, i);
            match (&res.result, exp) {
                (Ok(WindowReport::Explained(a)), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                other => prop_assert!(false, "divergence at window {}: {:?}", i, other),
            }
        }

        // Size-only agrees with the full explanations' Phase 1.
        let mut sizes = Vec::new();
        streamer.mode(StreamMode::SizeOnly).explain_stream(
            &index,
            windows.clone(),
            None,
            |res| sizes.push(res),
        );
        for (res, exp) in sizes.iter().zip(&expected) {
            match (&res.result, exp) {
                (Ok(WindowReport::Size(k)), Ok(e)) => prop_assert_eq!(k, &e.phase1),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                other => prop_assert!(false, "size divergence: {:?}", other),
            }
        }
    }
}

/// One edit of the incrementally-maintained reference multiset.
#[derive(Debug, Clone, Copy)]
enum IndexOp {
    /// Insert a fresh value.
    Insert(f64),
    /// Remove the live value at this (mod-len) position.
    Remove(usize),
    /// One window slide: remove at a position, insert a value.
    Slide(usize, f64),
}

/// Values stressing the index's edge cases: duplicates (coarse integer
/// grid), signed zeros, and near-eps neighbors straddling `f64` rounding.
fn index_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        (0i32..10).prop_map(f64::from),
        (0i32..10).prop_map(f64::from),
        Just(0.0),
        Just(-0.0),
        (0i32..4).prop_map(|k| f64::from(k) * 1e-12),
        (0i32..4).prop_map(|k| 1.0 + f64::from(k) * f64::EPSILON),
        (-6i32..6).prop_map(|v| f64::from(v) * 0.25),
    ]
}

fn index_op() -> impl Strategy<Value = IndexOp> {
    prop_oneof![
        index_value().prop_map(IndexOp::Insert),
        index_value().prop_map(IndexOp::Insert),
        (0usize..256).prop_map(IndexOp::Remove),
        ((0usize..256), index_value()).prop_map(|(i, v)| IndexOp::Slide(i, v)),
        ((0usize..256), index_value()).prop_map(|(i, v)| IndexOp::Slide(i, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // The monitor-alarm invariant: after ANY sequence of inserts, removes
    // and slides, the incrementally-maintained index materializes
    // byte-identically to a from-scratch sorted `ReferenceIndex::new` over
    // the same live multiset — signed-zero representatives included.
    // `check_every` spaces the materializations out, so both re-sync paths
    // are exercised: short gaps patch the cached arrays delta-by-delta,
    // long gaps (a slide is two deltas, so ~40 unchecked ops overflow the
    // patch limit) fall back to the full in-order walk.
    #[test]
    fn incremental_index_is_byte_identical_to_sorted_builds(
        seed in proptest::collection::vec(index_value(), 1..12),
        ops in proptest::collection::vec(index_op(), 0..80),
        check_every in 1usize..50,
    ) {
        let mut live = IncrementalRefIndex::new();
        let mut window: Vec<f64> = Vec::new();
        for &v in &seed {
            live.insert(v);
            window.push(v);
        }
        let check = |live: &mut IncrementalRefIndex, window: &[f64], ctx: &str| {
            if window.is_empty() {
                prop_assert!(live.is_empty());
                prop_assert!(live.materialize().is_err());
                return Ok(());
            }
            let expected = ReferenceIndex::new(window).unwrap();
            let got = live.materialize().unwrap();
            prop_assert_eq!(got, &expected, "{}", ctx);
            // PartialEq on f64 treats -0.0 == 0.0; pin the raw bits.
            let bits = |vs: &[f64]| vs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(
                bits(got.distinct()),
                bits(expected.distinct()),
                "distinct bits: {}",
                ctx
            );
            prop_assert_eq!(got.n(), window.len(), "{}", ctx);
            Ok(())
        };
        check(&mut live, &window, "after seed")?;
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                IndexOp::Insert(v) => {
                    live.insert(v);
                    window.push(v);
                }
                IndexOp::Remove(pos) => {
                    if !window.is_empty() {
                        let v = window.swap_remove(pos % window.len());
                        prop_assert!(live.remove(v), "live value must be removable");
                    }
                }
                IndexOp::Slide(pos, v) => {
                    if !window.is_empty() {
                        let old = window.swap_remove(pos % window.len());
                        prop_assert!(live.remove(old));
                    }
                    live.insert(v);
                    window.push(v);
                }
            }
            if step % check_every == check_every - 1 {
                check(&mut live, &window, &format!("step {step}"))?;
            }
        }
        check(&mut live, &window, "after the full op sequence")?;
        // And the materialized view feeds the splice like a sorted index.
        if !window.is_empty() {
            let test = [0.5, 2.0, 2.0, -0.0, 9.5];
            let via_live = BaseVector::build_with_index(live.materialize().unwrap(), &test[..]);
            let merged = BaseVector::build(&window, &test[..]);
            prop_assert_eq!(via_live.unwrap(), merged.unwrap());
        }
    }

    // Sliding-window shape (the monitor's exact usage): FIFO slides over a
    // random series, checked against from-scratch builds at every step.
    #[test]
    fn incremental_index_tracks_a_sliding_window(
        series in proptest::collection::vec(index_value(), 24..120),
        w in 4usize..16,
    ) {
        let w = w.min(series.len() / 2);
        let mut live = IncrementalRefIndex::with_capacity(w);
        for &v in &series[..w] {
            live.insert(v);
        }
        for step in 0..(series.len() - w) {
            prop_assert!(live.remove(series[step]));
            live.insert(series[step + w]);
            let expected = ReferenceIndex::new(&series[step + 1..step + 1 + w]).unwrap();
            let got = live.materialize().unwrap();
            prop_assert_eq!(got, &expected, "step {}", step);
            let bits = |vs: &[f64]| vs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(got.distinct()), bits(expected.distinct()), "step {}", step);
        }
    }
}

/// 1000 windows through a tiny buffer bound: the stream must complete, in
/// order, and agree with the sequential engine — the bounded-memory claim
/// exercised at length. (Plain `#[test]`: no random shrinking wanted here.)
#[test]
fn streaming_1k_windows_with_tiny_buffer() {
    let reference: Vec<f64> = (0..400u32).map(|i| f64::from(i % 16)).collect();
    let windows: Vec<Vec<f64>> = (0..1000u32)
        .map(|w| (0..24).map(|i| f64::from((i + w) % 16) * 0.5 + 8.0 + f64::from(w % 5)).collect())
        .collect();
    let index = ReferenceIndex::new(&reference).unwrap();

    let sequential = StreamingBatchExplainer::new(0.05).unwrap().threads(1).buffer(1);
    let mut expected = Vec::new();
    sequential.explain_stream(&index, windows.clone(), None, |r| expected.push(r));

    let parallel = StreamingBatchExplainer::new(0.05).unwrap().threads(3).buffer(2);
    let mut got = Vec::new();
    let summary = parallel.explain_stream(&index, windows.clone(), None, |r| got.push(r));

    assert_eq!(summary.windows, 1000);
    assert_eq!(summary.explained + summary.passing + summary.errors, 1000);
    assert!(summary.explained > 0, "the shifted windows must mostly fail the KS test");
    assert_eq!(got.len(), expected.len());
    for (i, (a, b)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(a.window, i, "window {i} out of order");
        assert_eq!(a, b, "window {i} diverges from the sequential run");
    }
}
