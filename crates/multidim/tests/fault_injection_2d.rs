//! Failpoint-driven fault scenarios for the 2-D batch and streaming paths.
//!
//! Compiles only under `--features fault-injection`. Mirrors the 1-D suite
//! in `crates/core/tests/fault_injection.rs`: the registry is
//! process-global, so every scenario runs as a sequential phase of one
//! `#[test]`.

#![cfg(feature = "fault-injection")]

use moche_core::fault::{self, Fault};
use moche_core::MocheError;
use moche_multidim::{
    Batch2dExplainer, Explanation2d, Ks2dConfig, Point2, RankIndex2d, Stream2dExplainer,
};

fn grid(n: usize, ox: f64, oy: f64) -> Vec<Point2> {
    (0..n)
        .map(|i| Point2::new(((i * 7) % 13) as f64 * 0.31 + ox, ((i * 11) % 17) as f64 * 0.23 + oy))
        .collect()
}

fn setup(count: usize) -> (Vec<Point2>, Vec<Vec<Point2>>) {
    let reference = grid(120, 0.0, 0.0);
    let windows: Vec<Vec<Point2>> = (0..count)
        .map(|w| {
            let mut t = grid(60, 0.01 * (w as f64 + 1.0), 0.02);
            t.extend(grid(18 + (w % 5), 50.0, 50.0));
            t
        })
        .collect();
    (reference, windows)
}

fn vec_source(windows: Vec<Vec<Point2>>) -> impl FnMut(&mut Vec<Point2>) -> bool {
    let mut queue = windows.into_iter();
    move |out: &mut Vec<Point2>| match queue.next() {
        Some(points) => {
            out.extend(points);
            true
        }
        None => false,
    }
}

#[test]
fn injected_2d_faults_are_contained() {
    let (reference, windows) = setup(10);
    let index = RankIndex2d::new(&reference).unwrap();
    let cfg = Ks2dConfig::new(0.05).unwrap();

    // Clean baseline to diff every faulted run against.
    let clean =
        Batch2dExplainer::with_config(cfg).threads(1).explain_windows(&index, &windows, None);
    assert!(clean.iter().all(Result::is_ok));

    batch2d_worker_panic_hits_only_window_k(cfg, &index, &windows, &clean);
    batch2d_parallel_worker_panic_hits_exactly_one_window(cfg, &index, &windows, &clean);
    stream2d_worker_panic_is_isolated_and_tallied(cfg, &index, &windows, &clean);
    stream2d_feeder_error_ends_the_stream_in_order(cfg, &index, &windows, &clean);
}

/// A panic injected at window `k` of a 2-D batch run yields
/// `WorkerPanicked` for window `k` and *only* window `k`, and the worker's
/// rebuilt engine keeps producing baseline-identical output afterwards.
fn batch2d_worker_panic_hits_only_window_k(
    cfg: Ks2dConfig,
    index: &RankIndex2d,
    windows: &[Vec<Point2>],
    clean: &[Result<Explanation2d, MocheError>],
) {
    let k = 4;
    fault::arm("batch2d.worker", Fault::Panic, k, 1);
    let results =
        Batch2dExplainer::with_config(cfg).threads(1).explain_windows(index, windows, None);
    fault::disarm("batch2d.worker");

    for (i, (got, want)) in results.iter().zip(clean).enumerate() {
        if i == k {
            match got {
                Err(MocheError::WorkerPanicked { window, message }) => {
                    assert_eq!(*window, k);
                    assert!(message.contains("batch2d.worker"), "message: {message}");
                }
                other => panic!("window {k}: expected WorkerPanicked, got {other:?}"),
            }
        } else {
            assert_eq!(
                got.as_ref().unwrap().indices,
                want.as_ref().unwrap().indices,
                "window {i} diverged from the clean baseline"
            );
        }
    }
}

/// Under a parallel pool the panic still costs exactly one window (which
/// one depends on scheduling), and every other window matches the baseline.
fn batch2d_parallel_worker_panic_hits_exactly_one_window(
    cfg: Ks2dConfig,
    index: &RankIndex2d,
    windows: &[Vec<Point2>],
    clean: &[Result<Explanation2d, MocheError>],
) {
    fault::arm("batch2d.worker", Fault::Panic, 3, 1);
    let results =
        Batch2dExplainer::with_config(cfg).threads(4).explain_windows(index, windows, None);
    fault::disarm("batch2d.worker");

    let mut panicked = 0usize;
    for (i, got) in results.iter().enumerate() {
        match got {
            Err(MocheError::WorkerPanicked { window, .. }) => {
                assert_eq!(*window, i);
                panicked += 1;
            }
            Ok(e) => assert_eq!(e.indices, clean[i].as_ref().unwrap().indices),
            other => panic!("window {i}: unexpected {other:?}"),
        }
    }
    assert_eq!(panicked, 1, "exactly one window pays for the panic");
}

/// A streaming worker panic is delivered in order as that window's error,
/// counted in `summary.panics`, and no other window is disturbed.
fn stream2d_worker_panic_is_isolated_and_tallied(
    cfg: Ks2dConfig,
    index: &RankIndex2d,
    windows: &[Vec<Point2>],
    clean: &[Result<Explanation2d, MocheError>],
) {
    let k = 6;
    fault::arm("stream2d.worker", Fault::Panic, k, 1);
    let mut seen: Vec<(usize, bool)> = Vec::new();
    let summary = Stream2dExplainer::with_config(cfg).threads(1).explain_source(
        index,
        vec_source(windows.to_vec()),
        None,
        |delivered| {
            if let Err(MocheError::WorkerPanicked { window, message }) = &delivered.result {
                assert_eq!(*window, k);
                assert!(message.contains("stream2d.worker"), "message: {message}");
            } else {
                let want = clean[delivered.window].as_ref().unwrap();
                assert_eq!(delivered.result.as_ref().unwrap().indices, want.indices);
            }
            seen.push((delivered.window, delivered.result.is_ok()));
        },
    );
    fault::disarm("stream2d.worker");

    assert_eq!(summary.windows, windows.len());
    assert_eq!(summary.panics, 1);
    assert_eq!(summary.errors, 1);
    assert_eq!(summary.explained, windows.len() - 1);
    let order: Vec<usize> = seen.iter().map(|&(w, _)| w).collect();
    assert_eq!(order, (0..windows.len()).collect::<Vec<_>>(), "in-order delivery");
    assert!(seen.iter().all(|&(w, ok)| ok == (w != k)));
}

/// A feeder error stops the stream after the windows already fed, which are
/// still delivered in order with baseline-identical results.
fn stream2d_feeder_error_ends_the_stream_in_order(
    cfg: Ks2dConfig,
    index: &RankIndex2d,
    windows: &[Vec<Point2>],
    clean: &[Result<Explanation2d, MocheError>],
) {
    let fed = 5;
    fault::arm("stream2d.feeder", Fault::Error, fed, 1);
    let mut delivered: Vec<usize> = Vec::new();
    let summary = Stream2dExplainer::with_config(cfg).threads(2).explain_source(
        index,
        vec_source(windows.to_vec()),
        None,
        |result| {
            let want = clean[result.window].as_ref().unwrap();
            assert_eq!(result.result.as_ref().unwrap().indices, want.indices);
            delivered.push(result.window);
        },
    );
    fault::disarm("stream2d.feeder");

    assert_eq!(summary.windows, fed, "only the windows fed before the fault");
    assert_eq!(summary.explained, fed);
    assert_eq!(delivered, (0..fed).collect::<Vec<_>>());
}
