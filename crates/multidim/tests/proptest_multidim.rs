//! Property suite for the 2-D engine treatment: the rank-space index and
//! the [`Explain2dEngine`] must be *bit-identical* to the naive
//! Fasano-Franceschini implementations on arbitrary inputs — duplicates,
//! shared coordinates, signed zeros, collinear and constant windows — and
//! the impact explainer's irreducibility contract must hold.

use moche_core::{MocheError, PreferenceList};
use moche_multidim::{
    ks2d_statistic, ks2d_statistic_indexed, ks2d_test, pearson_r, Explain2dEngine,
    Explanation2dArena, GreedyImpact2d, Ks2dConfig, Point2, RankIndex2d, Scratch2d,
};
use proptest::prelude::*;

/// Coordinates drawn from a small lattice (plus both signed zeros), so
/// generated samples are dense in duplicates and on-line points — the FF
/// statistic's exclusion rule and the sweep's rank handling get exercised
/// constantly.
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![(-4i32..5).prop_map(|v| f64::from(v) * 0.5), Just(-0.0f64), Just(0.0f64),]
}

fn points(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point2>> {
    proptest::collection::vec((coord(), coord()).prop_map(|(x, y)| Point2::new(x, y)), len)
}

/// Test windows shifted off the reference lattice so a useful fraction of
/// generated instances actually fail the KS test.
fn shifted_points(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point2>> {
    points(len).prop_map(|pts| pts.into_iter().map(|p| Point2::new(p.x + 2.0, p.y + 2.5)).collect())
}

fn alphas() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.05), Just(0.1), Just(0.2), Just(0.3)]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        max_global_rejects: 8192,
        ..ProptestConfig::default()
    })]

    #[test]
    fn indexed_statistic_is_bit_identical_to_naive(r in points(3..36), t in points(3..24)) {
        let index = RankIndex2d::new(&r).unwrap();
        let mut scratch = Scratch2d::new();
        let indexed = ks2d_statistic_indexed(&index, &t, &mut scratch).unwrap();
        let naive = ks2d_statistic(&r, &t).unwrap();
        prop_assert_eq!(indexed.to_bits(), naive.to_bits());
    }

    #[test]
    fn incremental_removal_matches_rescan(
        r in points(3..28),
        t in points(3..20),
        seed in 0u64..1000,
    ) {
        let index = RankIndex2d::new(&r).unwrap();
        let mut scratch = Scratch2d::new();
        scratch.bind(&index, &t);
        // A deterministic pseudo-random removal set, never the full window.
        let mut removed: Vec<usize> = Vec::new();
        for j in 0..t.len() {
            if (j as u64 * 7 + seed).is_multiple_of(3) && removed.len() + 1 < t.len() {
                removed.push(j);
            }
        }
        for &j in &removed {
            // The O(n+m) candidate evaluation must equal remove-then-score.
            let candidate = scratch.statistic_excluding(&index, &t, j);
            scratch.remove(&index, &t, j);
            prop_assert_eq!(candidate.to_bits(), scratch.statistic(&index).to_bits());
        }
        let kept: Vec<Point2> = t
            .iter()
            .enumerate()
            .filter_map(|(j, &p)| (!removed.contains(&j)).then_some(p))
            .collect();
        let naive = ks2d_statistic(&r, &kept).unwrap();
        prop_assert_eq!(scratch.statistic(&index).to_bits(), naive.to_bits());
        prop_assert_eq!(scratch.pearson_live(&t).to_bits(), pearson_r(&kept).to_bits());
        // Restoring in any order returns to the full-window statistic.
        for &j in removed.iter().rev() {
            scratch.restore(&index, &t, j);
        }
        let full = ks2d_statistic(&r, &t).unwrap();
        prop_assert_eq!(scratch.statistic(&index).to_bits(), full.to_bits());
    }

    #[test]
    fn collinear_and_constant_windows_match(
        xs in proptest::collection::vec(coord(), 3..15),
        r in points(5..25),
        mode in 0usize..3,
    ) {
        let t: Vec<Point2> = xs
            .iter()
            .map(|&x| match mode {
                0 => Point2::new(x, 2.0 * x + 1.0),
                1 => Point2::new(x, -x),
                _ => Point2::new(x, 1.5),
            })
            .collect();
        let index = RankIndex2d::new(&r).unwrap();
        let mut scratch = Scratch2d::new();
        let indexed = ks2d_statistic_indexed(&index, &t, &mut scratch).unwrap();
        prop_assert_eq!(indexed.to_bits(), ks2d_statistic(&r, &t).unwrap().to_bits());
        prop_assert_eq!(scratch.pearson_live(&t).to_bits(), pearson_r(&t).to_bits());
    }

    #[test]
    fn engine_is_byte_identical_to_the_naive_impact_explainer(
        r in points(6..28),
        t in shifted_points(4..14),
        alpha in alphas(),
        seed in 0u64..1000,
    ) {
        let cfg = Ks2dConfig::new(alpha).unwrap();
        prop_assume!(ks2d_test(&r, &t, &cfg).unwrap().rejected);
        let pref = PreferenceList::random(t.len(), seed);
        let naive = GreedyImpact2d.explain(&r, &t, &cfg, Some(&pref));
        let index = RankIndex2d::new(&r).unwrap();
        let mut engine = Explain2dEngine::with_config(cfg);
        let fast = engine.explain(&index, &t, Some(&pref));
        // The warm arena path must agree with the allocating path too.
        let mut arena = Explanation2dArena::new();
        let warm = engine.explain_in(&index, &t, Some(&pref), &mut arena);
        match (naive, fast, warm) {
            (Ok(a), Ok(b), Ok(c)) => {
                prop_assert_eq!(&a.indices, &b.indices);
                prop_assert_eq!(&a.indices, &c.indices);
                prop_assert_eq!(
                    a.outcome_before.p_value.to_bits(),
                    b.outcome_before.p_value.to_bits()
                );
                prop_assert_eq!(
                    a.outcome_after.statistic.to_bits(),
                    b.outcome_after.statistic.to_bits()
                );
                prop_assert_eq!(a.outcome_after.p_value.to_bits(), b.outcome_after.p_value.to_bits());
                prop_assert_eq!(a.outcome_after.m, b.outcome_after.m);
                prop_assert_eq!(b.outcome_after, c.outcome_after);
            }
            (
                Err(MocheError::NoExplanation { .. }),
                Err(MocheError::NoExplanation { .. }),
                Err(MocheError::NoExplanation { .. }),
            ) => {}
            (a, b, c) => prop_assert!(false, "diverged: naive={a:?} fast={b:?} warm={c:?}"),
        }
    }

    #[test]
    fn impact_explanations_are_irreducible(
        r in points(6..28),
        t in shifted_points(4..14),
        alpha in alphas(),
    ) {
        let cfg = Ks2dConfig::new(alpha).unwrap();
        prop_assume!(ks2d_test(&r, &t, &cfg).unwrap().rejected);
        let index = RankIndex2d::new(&r).unwrap();
        let mut engine = Explain2dEngine::with_config(cfg);
        // NoExplanation instances have nothing to check.
        if let Ok(e) = engine.explain(&index, &t, None) {
            prop_assert!(e.outcome_after.passes());
            for drop in 0..e.size() {
                let still_removed: Vec<usize> = e
                    .indices
                    .iter()
                    .enumerate()
                    .filter_map(|(j, &i)| (j != drop).then_some(i))
                    .collect();
                let kept: Vec<Point2> = t
                    .iter()
                    .enumerate()
                    .filter_map(|(j, &p)| (!still_removed.contains(&j)).then_some(p))
                    .collect();
                // outcome_of_removal ≡ ks2d_test over the kept subset.
                let o = ks2d_test(&r, &kept, &cfg).unwrap();
                prop_assert!(o.rejected, "dropping element {} still passes: not irreducible", drop);
            }
        }
    }
}
