//! Allocation-count gate for the warm 2-D explanation path.
//!
//! Same discipline as `crates/core/tests/alloc_count.rs`: this binary owns
//! its process, installs a counting global allocator, and contains exactly
//! ONE #[test] so no sibling test thread pollutes a measurement window. A
//! warm [`Explain2dEngine`] + [`Explanation2dArena`] pair must explain
//! already-seen window shapes with exactly zero marginal heap allocations.

use moche_core::PreferenceList;
use moche_multidim::{Explain2dEngine, Explanation2dArena, Point2, RankIndex2d};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a counter bump; every
// `GlobalAlloc` contract obligation is discharged by `System` itself.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; the caller upholds `alloc`'s contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; `ptr` came from this allocator, which
        // delegates all allocation to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; `ptr` came from this allocator, which
        // delegates all allocation to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn grid(n: usize, ox: f64, oy: f64) -> Vec<Point2> {
    (0..n)
        .map(|i| Point2::new(((i * 7) % 13) as f64 * 0.31 + ox, ((i * 11) % 17) as f64 * 0.23 + oy))
        .collect()
}

/// Failing windows of slightly varying shape, so the warm path is measured
/// across re-binds rather than on one frozen input.
fn failing_windows() -> (Vec<Point2>, Vec<Vec<Point2>>) {
    let reference = grid(120, 0.0, 0.0);
    let windows: Vec<Vec<Point2>> = (0..6)
        .map(|w| {
            let mut t = grid(60, 0.01 * (w as f64 + 1.0), 0.02);
            t.extend(grid(20 + w, 50.0, 50.0));
            t
        })
        .collect();
    (reference, windows)
}

#[test]
fn warm_2d_explain_allocates_nothing() {
    let (reference, windows) = failing_windows();
    let index = RankIndex2d::new(&reference).unwrap();
    let mut engine = Explain2dEngine::new(0.05).unwrap();
    let mut arena = Explanation2dArena::new();
    let preference = PreferenceList::identity(windows[0].len());
    // Warm every buffer: scratch counts, rank/live vectors, arena storage.
    for (w, window) in windows.iter().enumerate() {
        let pref = (window.len() == preference.len()).then_some(&preference);
        let e = engine.explain_in(&index, window, pref, &mut arena).unwrap_or_else(|err| {
            panic!("window {w} must explain during warm-up: {err}");
        });
        arena.recycle(e);
    }
    // The counter is process-global and libtest's main thread can still be
    // allocating one-shot startup state during the first window; retry to
    // tell that noise from a real leak (a per-window regression allocates
    // on every attempt and still fails).
    let mut allocated = u64::MAX;
    for _ in 0..3 {
        let before = allocations();
        for _ in 0..3 {
            for window in &windows {
                let pref = (window.len() == preference.len()).then_some(&preference);
                let e = engine.explain_in(&index, window, pref, &mut arena).unwrap();
                arena.recycle(e);
            }
        }
        allocated = allocations() - before;
        if allocated == 0 {
            break;
        }
    }
    assert_eq!(allocated, 0, "warm 2-D explain_in must not allocate");
}
