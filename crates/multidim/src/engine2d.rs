//! The reusable 2-D explanation engine — the engine treatment of
//! [`GreedyImpact2d`](crate::explain2d::GreedyImpact2d), mirroring
//! `moche_core::MocheEngine` + `ExplanationArena`.
//!
//! [`Explain2dEngine`] owns every piece of descent state ([`Scratch2d`]
//! counts, rank and live-set buffers) and replays the naive
//! steepest-descent + prune algorithm over the rank-space index, so its
//! output is **byte-identical** to `GreedyImpact2d::explain` (pinned by the
//! property suite) while each candidate evaluation costs `O(n + m)` instead
//! of `O((n + m)²)`. [`Explanation2dArena`] recycles the output's index
//! storage, so a warm `(engine, arena)` pair explains a window with **zero
//! marginal heap allocations** (pinned by a counting-allocator test).
//!
//! The engine does not own the reference index: it borrows a
//! [`RankIndex2d`] per call, so batch workers share one immutable index
//! across threads.
//!
//! ```
//! use moche_multidim::{Explain2dEngine, Explanation2dArena, Point2, RankIndex2d};
//!
//! let reference: Vec<Point2> =
//!     (0..80).map(|i| Point2::new(f64::from(i % 9), f64::from(i % 7))).collect();
//! let mut test = reference.clone();
//! test.truncate(40);
//! test.extend((0..25).map(|i| Point2::new(f64::from(i) + 60.0, 60.0)));
//!
//! let index = RankIndex2d::new(&reference).unwrap();
//! let mut engine = Explain2dEngine::new(0.05).unwrap();
//! let mut arena = Explanation2dArena::new();
//! let e = engine.explain_in(&index, &test, None, &mut arena).unwrap();
//! assert!(e.outcome_after.passes());
//! arena.recycle(e); // storage returns for the next window
//! ```

use crate::explain2d::Explanation2d;
use crate::ks2d::{ks2d_p_value, Ks2dConfig, Ks2dOutcome};
use crate::point2::{validate_sample, Point2};
use crate::rank_index::{RankIndex2d, Scratch2d};
use moche_core::error::SetKind;
use moche_core::{MocheError, PreferenceList};

/// Recyclable storage for [`Explanation2d`] outputs: the 2-D counterpart of
/// `moche_core::ExplanationArena`.
#[derive(Debug, Default)]
pub struct Explanation2dArena {
    indices: Vec<usize>,
}

impl Explanation2dArena {
    /// An empty arena; the first explanation sizes its storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena pre-charged with the storage of a consumed explanation.
    pub fn recycled_from(explanation: Explanation2d) -> Self {
        let mut arena = Self::new();
        arena.recycle(explanation);
        arena
    }

    /// Whether the arena currently holds reusable capacity.
    pub fn has_storage(&self) -> bool {
        self.indices.capacity() > 0
    }

    /// Consumes an explanation and reclaims its heap storage.
    pub fn recycle(&mut self, explanation: Explanation2d) {
        let Explanation2d { mut indices, .. } = explanation;
        indices.clear();
        self.indices = indices;
    }

    // The engine's fallible steps all precede the take, so (unlike the 1-D
    // arena) there is no error path that needs to hand storage back.
    pub(crate) fn take(&mut self) -> Vec<usize> {
        let mut indices = std::mem::take(&mut self.indices);
        indices.clear();
        indices
    }
}

/// A reusable engine for 2-D counterfactual explanations over a
/// [`RankIndex2d`].
///
/// Produces exactly the explanations of
/// [`GreedyImpact2d`](crate::explain2d::GreedyImpact2d) — same indices,
/// same outcome bits — via incremental count maintenance instead of
/// per-candidate rescans.
#[derive(Debug)]
pub struct Explain2dEngine {
    cfg: Ks2dConfig,
    scratch: Scratch2d,
    ranks: Vec<usize>,
    live: Vec<usize>,
    removed_order: Vec<usize>,
    prune_order: Vec<usize>,
}

impl Explain2dEngine {
    /// Creates an engine at significance level `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        Ok(Self::with_config(Ks2dConfig::new(alpha)?))
    }

    /// Creates an engine from an existing configuration.
    pub fn with_config(cfg: Ks2dConfig) -> Self {
        Self {
            cfg,
            scratch: Scratch2d::new(),
            ranks: Vec::new(),
            live: Vec::new(),
            removed_order: Vec::new(),
            prune_order: Vec::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Ks2dConfig {
        &self.cfg
    }

    /// Explains a failed 2-D KS test, allocating a fresh output.
    ///
    /// # Errors
    ///
    /// As for [`explain_in`](Self::explain_in).
    pub fn explain(
        &mut self,
        index: &RankIndex2d,
        test: &[Point2],
        preference: Option<&PreferenceList>,
    ) -> Result<Explanation2d, MocheError> {
        let mut arena = Explanation2dArena::new();
        self.explain_in(index, test, preference, &mut arena)
    }

    /// Explains a failed 2-D KS test, drawing the output's storage from
    /// `arena`. With a warm engine and a charged arena this performs no
    /// heap allocation at all.
    ///
    /// # Errors
    ///
    /// * [`MocheError::EmptyTest`] / [`MocheError::NonFiniteValue`] for
    ///   invalid test windows (the boundary rejects NaN and infinities
    ///   before any state is touched).
    /// * [`MocheError::PreferenceLengthMismatch`] when the preference does
    ///   not cover the window.
    /// * [`MocheError::TestAlreadyPasses`] when there is nothing to explain.
    /// * [`MocheError::NoExplanation`] when even removing all but one point
    ///   does not reverse the test.
    ///
    /// On error the arena keeps its storage.
    pub fn explain_in(
        &mut self,
        index: &RankIndex2d,
        test: &[Point2],
        preference: Option<&PreferenceList>,
        arena: &mut Explanation2dArena,
    ) -> Result<Explanation2d, MocheError> {
        validate_sample(test, SetKind::Test)?;
        if let Some(p) = preference {
            p.check_length(test.len())?;
        }
        let m = test.len();
        self.scratch.bind(index, test);
        let d0 = self.scratch.statistic(index);
        let before = self.outcome(index, test, d0);
        if before.passes() {
            return Err(MocheError::TestAlreadyPasses {
                statistic: before.statistic,
                threshold: self.cfg.alpha,
            });
        }
        match preference {
            Some(p) => p.ranks_into(&mut self.ranks),
            None => {
                self.ranks.clear();
                self.ranks.extend(0..m);
            }
        }
        self.live.clear();
        self.live.extend(0..m);
        self.removed_order.clear();

        // Greedy descent: remove the live point whose removal minimizes the
        // statistic, ties by preference rank then by live-slot position —
        // the exact candidate order of the naive implementation, which the
        // shared `swap_remove` bookkeeping keeps aligned.
        while self.removed_order.len() + 1 < m {
            let d = self.scratch.statistic(index);
            if self.outcome(index, test, d).passes() {
                break;
            }
            let mut best: Option<(f64, usize, usize)> = None; // (stat, rank, pos)
            for (pos, &idx) in self.live.iter().enumerate() {
                let d = self.scratch.statistic_excluding(index, test, idx);
                let candidate = (d, self.ranks[idx], pos);
                if best.is_none_or(|b| candidate < b) {
                    best = Some(candidate);
                }
            }
            // lint:allow(panic): the descent loop only runs while
            // `self.live` is non-empty, so a best candidate always exists
            let (_, _, pos) = best.expect("live points remain");
            let idx = self.live.swap_remove(pos);
            self.scratch.remove(index, test, idx);
            self.removed_order.push(idx);
        }

        let d = self.scratch.statistic(index);
        if !self.outcome(index, test, d).passes() {
            return Err(MocheError::NoExplanation { alpha: self.cfg.alpha });
        }

        // Prune: re-admit points (worst preference first) whose return
        // keeps the test passing.
        self.prune_order.clear();
        self.prune_order.extend_from_slice(&self.removed_order);
        let ranks = &self.ranks;
        self.prune_order.sort_unstable_by_key(|&i| std::cmp::Reverse(ranks[i]));
        for k in 0..self.prune_order.len() {
            let idx = self.prune_order[k];
            if self.removed_order.len() == 1 {
                // The naive path skips candidates that would empty the set.
                continue;
            }
            self.scratch.restore(index, test, idx);
            let d = self.scratch.statistic(index);
            if self.outcome(index, test, d).passes() {
                let pos = self
                    .removed_order
                    .iter()
                    .position(|&i| i == idx)
                    // lint:allow(panic): `prune_order` is a copy of
                    // `removed_order`, so every pruned idx is present
                    .expect("pruned point is in the removed set");
                self.removed_order.remove(pos);
            } else {
                self.scratch.remove(index, test, idx);
            }
        }

        let mut indices = arena.take();
        indices.extend_from_slice(&self.removed_order);
        let ranks = &self.ranks;
        indices.sort_unstable_by_key(|&i| ranks[i]);
        let d = self.scratch.statistic(index);
        let outcome_after = self.outcome(index, test, d);
        debug_assert!(outcome_after.passes());
        Ok(Explanation2d { indices, outcome_before: before, outcome_after })
    }

    /// The full test outcome for the current live set with statistic `d` —
    /// the same float expressions as the naive `outcome_of_removal`, with
    /// the reference's Pearson term hoisted into the index.
    fn outcome(&self, index: &RankIndex2d, test: &[Point2], d: f64) -> Ks2dOutcome {
        let live = self.scratch.live_count();
        let p_value = ks2d_p_value(
            d,
            index.n(),
            live,
            index.reference_pearson(),
            self.scratch.pearson_live(test),
        );
        Ks2dOutcome {
            statistic: d,
            p_value,
            rejected: p_value < self.cfg.alpha,
            n: index.n(),
            m: live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain2d::GreedyImpact2d;
    use crate::ks2d::ks2d_test;

    fn contaminated() -> (Vec<Point2>, Vec<Point2>, Ks2dConfig) {
        let grid = |n: usize, ox: f64, oy: f64| -> Vec<Point2> {
            (0..n)
                .map(|i| {
                    Point2::new(
                        ((i * 7) % 13) as f64 * 0.31 + ox,
                        ((i * 11) % 17) as f64 * 0.23 + oy,
                    )
                })
                .collect()
        };
        let r = grid(120, 0.0, 0.0);
        let mut t = grid(60, 0.01, 0.02);
        t.extend(grid(25, 50.0, 50.0));
        (r, t, Ks2dConfig::new(0.05).unwrap())
    }

    #[test]
    fn engine_matches_naive_impact_explainer_exactly() {
        let (r, t, cfg) = contaminated();
        let naive = GreedyImpact2d.explain(&r, &t, &cfg, None).unwrap();
        let index = RankIndex2d::new(&r).unwrap();
        let mut engine = Explain2dEngine::with_config(cfg);
        let fast = engine.explain(&index, &t, None).unwrap();
        assert_eq!(fast.indices, naive.indices);
        assert_eq!(fast.outcome_after.statistic.to_bits(), naive.outcome_after.statistic.to_bits());
        assert_eq!(fast.outcome_after.p_value.to_bits(), naive.outcome_after.p_value.to_bits());
        assert_eq!(fast.outcome_before.p_value.to_bits(), naive.outcome_before.p_value.to_bits());
        assert_eq!(fast.outcome_after.m, naive.outcome_after.m);
    }

    #[test]
    fn engine_matches_naive_with_a_preference() {
        let (r, t, cfg) = contaminated();
        let scores: Vec<f64> = t.iter().map(|p| p.x + p.y).collect();
        let pref = PreferenceList::from_scores_desc(&scores).unwrap();
        let naive = GreedyImpact2d.explain(&r, &t, &cfg, Some(&pref)).unwrap();
        let index = RankIndex2d::new(&r).unwrap();
        let mut engine = Explain2dEngine::with_config(cfg);
        let fast = engine.explain(&index, &t, Some(&pref)).unwrap();
        assert_eq!(fast.indices, naive.indices);
    }

    #[test]
    fn warm_engine_is_reusable_across_windows() {
        let (r, t, cfg) = contaminated();
        let index = RankIndex2d::new(&r).unwrap();
        let mut engine = Explain2dEngine::with_config(cfg);
        let mut arena = Explanation2dArena::new();
        let first = engine.explain_in(&index, &t, None, &mut arena).unwrap();
        let first_indices = first.indices.clone();
        arena.recycle(first);
        assert!(arena.has_storage());
        let second = engine.explain_in(&index, &t, None, &mut arena).unwrap();
        assert_eq!(second.indices, first_indices);
    }

    #[test]
    fn non_finite_test_points_are_rejected_at_the_boundary() {
        let (r, _, cfg) = contaminated();
        let index = RankIndex2d::new(&r).unwrap();
        let mut engine = Explain2dEngine::with_config(cfg);
        for bad in [
            Point2::new(f64::NAN, 1.0),
            Point2::new(1.0, f64::NAN),
            Point2::new(f64::INFINITY, 1.0),
            Point2::new(1.0, f64::NEG_INFINITY),
        ] {
            let t = vec![Point2::new(0.0, 0.0), bad];
            match engine.explain(&index, &t, None) {
                Err(MocheError::NonFiniteValue { which: SetKind::Test, index: 1, .. }) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(matches!(engine.explain(&index, &[], None), Err(MocheError::EmptyTest)));
    }

    #[test]
    fn passing_window_and_short_preference_are_errors() {
        let (r, t, cfg) = contaminated();
        let index = RankIndex2d::new(&r).unwrap();
        let mut engine = Explain2dEngine::with_config(cfg);
        assert!(ks2d_test(&r, &r, &cfg).unwrap().passes());
        assert!(matches!(
            engine.explain(&index, &r, None),
            Err(MocheError::TestAlreadyPasses { .. })
        ));
        let pref = PreferenceList::identity(3);
        assert!(matches!(
            engine.explain(&index, &t, Some(&pref)),
            Err(MocheError::PreferenceLengthMismatch { .. })
        ));
    }

    #[test]
    fn arena_round_trip_preserves_storage() {
        let (r, t, cfg) = contaminated();
        let index = RankIndex2d::new(&r).unwrap();
        let mut engine = Explain2dEngine::with_config(cfg);
        let explanation = engine.explain(&index, &t, None).unwrap();
        let capacity = explanation.indices.capacity();
        let mut arena = Explanation2dArena::recycled_from(explanation);
        assert!(arena.has_storage());
        let again = arena.take();
        assert!(again.is_empty(), "take clears recycled contents");
        assert!(again.capacity() >= capacity.min(1));
    }
}
