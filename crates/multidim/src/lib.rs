//! # moche-multidim
//!
//! A working prototype of the MOCHE paper's declared future work
//! (Section 7): interpreting failed Kolmogorov-Smirnov tests on
//! **multidimensional** data.
//!
//! * [`ks2d`] — the two-sample 2-D KS test of Fasano & Franceschini
//!   (MNRAS 1987; reference \[18\] of the paper): quadrant-based statistic
//!   plus the Press et al. significance approximation.
//! * [`explain2d`] — heuristic counterfactual explainers over the 2-D
//!   test. The 1-D optimality machinery (cumulative-vector bounds) relies
//!   on the real line's total order and does not transfer; these explainers
//!   guarantee *soundness* (the returned set always reverses the test) and
//!   *irreducibility* (for [`GreedyImpact2d`]) but not minimality — the
//!   open problem the paper leaves behind.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explain2d;
pub mod ks2d;
pub mod point2;

pub use explain2d::{Explanation2d, GreedyImpact2d, GreedyPrefix2d};
pub use ks2d::{ks2d_statistic, ks2d_test, Ks2dConfig, Ks2dOutcome};
pub use point2::{points_from_xy, Point2};
