//! # moche-multidim
//!
//! A working prototype of the MOCHE paper's declared future work
//! (Section 7): interpreting failed Kolmogorov-Smirnov tests on
//! **multidimensional** data.
//!
//! * [`ks2d`] — the two-sample 2-D KS test of Fasano & Franceschini
//!   (MNRAS 1987; reference \[18\] of the paper): quadrant-based statistic
//!   plus the Press et al. significance approximation.
//! * [`explain2d`] — heuristic counterfactual explainers over the 2-D
//!   test. The 1-D optimality machinery (cumulative-vector bounds) relies
//!   on the real line's total order and does not transfer; these explainers
//!   guarantee *soundness* (the returned set always reverses the test) and
//!   *irreducibility* (for [`GreedyImpact2d`]) but not minimality — the
//!   open problem the paper leaves behind.
//! * [`rank_index`] — the production statistic path: [`RankIndex2d`] caches
//!   per-origin quadrant counts of the reference, and [`Scratch2d`]
//!   maintains the test-side counts incrementally under removals, making
//!   each greedy candidate evaluation `O(n + m)` instead of `O((n + m)²)`
//!   while staying bit-identical to the naive statistic.
//! * [`engine2d`] — [`Explain2dEngine`] + [`Explanation2dArena`], the 2-D
//!   analogue of `moche_core::MocheEngine` + `ExplanationArena`: a warm
//!   engine/arena pair explains a window with zero marginal heap
//!   allocations and byte-identical output to [`GreedyImpact2d`].
//! * [`batch2d`] / [`stream2d`] — worker-pool batch and bounded-memory
//!   streaming drivers over shared indexes, with the same per-window error
//!   isolation and in-order delivery contracts as the 1-D pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch2d;
pub mod engine2d;
pub mod explain2d;
pub mod ks2d;
pub mod point2;
pub mod rank_index;
pub mod stream2d;

pub use batch2d::Batch2dExplainer;
pub use engine2d::{Explain2dEngine, Explanation2dArena};
pub use explain2d::{Explanation2d, GreedyImpact2d, GreedyPrefix2d};
pub use ks2d::{ks2d_statistic, ks2d_test, pearson_r, Ks2dConfig, Ks2dOutcome};
pub use point2::{points_from_xy, Point2};
pub use rank_index::{ks2d_statistic_indexed, RankIndex2d, Scratch2d};
pub use stream2d::{Score2dFn, Stream2dExplainer, Stream2dResult, Stream2dSummary, Window2dSource};
