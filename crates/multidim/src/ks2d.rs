//! The two-sample Kolmogorov-Smirnov test on 2-D data, after Fasano &
//! Franceschini, *A multidimensional version of the Kolmogorov-Smirnov
//! test*, MNRAS 225 (1987) — reference \[18\] of the MOCHE paper and the
//! substrate for its declared future work ("extend MOCHE to interpret
//! failed KS tests conducted on multidimensional data points").
//!
//! In 2-D there is no unique CDF ordering, so Fasano-Franceschini take, at
//! every data point, the **four quadrants** it induces and compare the
//! fraction of each sample falling in each quadrant; the statistic is the
//! largest absolute difference over all points of both samples and all
//! four orientations:
//!
//! ```text
//! D = max_{p in R ∪ T} max_{quadrant q of p} |R(q)/n - T(q)/m|
//! ```
//!
//! Significance uses the Press et al. (Numerical Recipes) formulation of
//! the FF approximation: with `N = n m / (n + m)` and `r` the average of
//! the two samples' coordinate correlation coefficients,
//!
//! ```text
//! p-value ≈ Q_KS( D √N / (1 + √(1 - r²) (0.25 - 0.75/√N)) )
//! ```
//!
//! accurate for `N ≳ 20`. This module keeps the direct `O((n+m)·(n+m))`
//! quadrant count as the reference implementation; the production path is
//! the rank-space index of [`crate::rank_index`], pinned bit-identical to
//! it by the property suite.

use crate::point2::{validate_points, Point2};
use moche_core::ks::kolmogorov_q;
use moche_core::MocheError;

/// Configuration of the 2-D KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ks2dConfig {
    /// Significance level `α`.
    pub alpha: f64,
}

impl Ks2dConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(MocheError::InvalidAlpha { alpha });
        }
        Ok(Self { alpha })
    }
}

/// The outcome of a 2-D two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ks2dOutcome {
    /// The FF statistic `D`.
    pub statistic: f64,
    /// The approximate p-value.
    pub p_value: f64,
    /// Whether the null hypothesis was rejected at the configured `α`.
    pub rejected: bool,
    /// `|R|`.
    pub n: usize,
    /// `|T|`.
    pub m: usize,
}

impl Ks2dOutcome {
    /// Whether the samples pass the test.
    pub fn passes(&self) -> bool {
        !self.rejected
    }
}

/// Counts the fraction of `sample` in each quadrant around `origin`
/// (NE, NW, SW, SE), excluding points exactly on the dividing lines
/// (the FF convention).
fn quadrant_fractions(origin: Point2, sample: &[Point2]) -> [f64; 4] {
    let mut counts = [0usize; 4];
    for p in sample {
        let dx = p.x - origin.x;
        let dy = p.y - origin.y;
        if dx == 0.0 || dy == 0.0 {
            continue;
        }
        let idx = match (dx > 0.0, dy > 0.0) {
            (true, true) => 0,   // NE
            (false, true) => 1,  // NW
            (false, false) => 2, // SW
            (true, false) => 3,  // SE
        };
        counts[idx] += 1;
    }
    let total = sample.len() as f64;
    [
        counts[0] as f64 / total,
        counts[1] as f64 / total,
        counts[2] as f64 / total,
        counts[3] as f64 / total,
    ]
}

/// The FF statistic: maximum quadrant discrepancy over the origins of both
/// samples.
///
/// # Errors
///
/// Returns an error for empty or non-finite samples.
pub fn ks2d_statistic(reference: &[Point2], test: &[Point2]) -> Result<f64, MocheError> {
    validate_points(reference, test)?;
    let mut d = 0.0f64;
    for origin in reference.iter().chain(test.iter()) {
        let fr = quadrant_fractions(*origin, reference);
        let ft = quadrant_fractions(*origin, test);
        for q in 0..4 {
            let diff = (fr[q] - ft[q]).abs();
            if diff > d {
                d = diff;
            }
        }
    }
    Ok(d)
}

/// Pearson correlation coefficient of a sample's coordinates (0 for
/// degenerate samples).
pub fn pearson_r(sample: &[Point2]) -> f64 {
    let n = sample.len() as f64;
    if sample.len() < 2 {
        return 0.0;
    }
    let mx = sample.iter().map(|p| p.x).sum::<f64>() / n;
    let my = sample.iter().map(|p| p.y).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for p in sample {
        let dx = p.x - mx;
        let dy = p.y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
}

/// The FF approximate p-value for statistic `d` with samples of sizes `n`,
/// `m` and coordinate correlations `r1`, `r2`.
///
/// The Press et al. correction term `(0.25 - 0.75/√N)` goes negative for
/// `N < 9`, outside the approximation's stated validity (`N ≳ 20`); the
/// denominator is clamped at 1 there, which makes tiny effective samples
/// conservative (they pass unless the evidence is extreme) and restores the
/// 1-D existence-guarantee analogue: a single surviving test point can
/// never reject at practical significance levels.
pub fn ks2d_p_value(d: f64, n: usize, m: usize, r1: f64, r2: f64) -> f64 {
    let n_eff = (n as f64) * (m as f64) / ((n + m) as f64);
    let sqrt_n = n_eff.sqrt();
    let rr = 0.5 * (r1 * r1 + r2 * r2);
    let denom = (1.0 + (1.0 - rr).max(0.0).sqrt() * (0.25 - 0.75 / sqrt_n)).max(1.0);
    kolmogorov_q(d * sqrt_n / denom)
}

/// Runs the 2-D two-sample KS test.
///
/// # Errors
///
/// Returns an error for empty or non-finite samples.
///
/// # Examples
///
/// ```
/// use moche_multidim::{ks2d_test, Ks2dConfig, Point2};
///
/// let cfg = Ks2dConfig::new(0.05).unwrap();
/// let reference: Vec<Point2> =
///     (0..100).map(|i| Point2::new(f64::from(i % 10), f64::from(i % 7))).collect();
/// let shifted: Vec<Point2> =
///     reference.iter().map(|p| Point2::new(p.x + 50.0, p.y + 50.0)).collect();
///
/// assert!(ks2d_test(&reference, &reference, &cfg).unwrap().passes());
/// assert!(ks2d_test(&reference, &shifted, &cfg).unwrap().rejected);
/// ```
pub fn ks2d_test(
    reference: &[Point2],
    test: &[Point2],
    cfg: &Ks2dConfig,
) -> Result<Ks2dOutcome, MocheError> {
    let statistic = ks2d_statistic(reference, test)?;
    let p_value =
        ks2d_p_value(statistic, reference.len(), test.len(), pearson_r(reference), pearson_r(test));
    Ok(Ks2dOutcome {
        statistic,
        p_value,
        rejected: p_value < cfg.alpha,
        n: reference.len(),
        m: test.len(),
    })
}

/// Reusable buffers for the naive explainers' removal evaluations: the
/// keep mask and the materialized kept subset are recycled across the
/// `O(m²)` candidate scans instead of being reallocated per candidate.
#[derive(Debug, Default, Clone)]
pub(crate) struct RemovalScratch {
    keep: Vec<bool>,
    kept: Vec<Point2>,
}

impl RemovalScratch {
    /// The kept subset materialized by the last
    /// [`statistic_after_removal`] call.
    pub(crate) fn kept(&self) -> &[Point2] {
        &self.kept
    }
}

/// The statistic after removing the test points at `removed` (sorted or
/// not; indices into `test`). Used by the naive explainers; `O((n+m)²)`
/// like the full statistic, but allocation-free once the scratch is warm.
pub(crate) fn statistic_after_removal(
    reference: &[Point2],
    test: &[Point2],
    removed: &[usize],
    scratch: &mut RemovalScratch,
) -> f64 {
    scratch.keep.clear();
    scratch.keep.resize(test.len(), true);
    for &i in removed {
        scratch.keep[i] = false;
    }
    scratch.kept.clear();
    scratch.kept.extend(test.iter().zip(&scratch.keep).filter_map(|(&p, &k)| k.then_some(p)));
    ks2d_statistic(reference, &scratch.kept).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point2::points_from_xy;

    fn grid(n: usize, offset: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                Point2::new(
                    ((i * 7) % 13) as f64 * 0.3 + offset,
                    ((i * 11) % 17) as f64 * 0.2 + offset,
                )
            })
            .collect()
    }

    #[test]
    fn identical_samples_have_zero_statistic_and_pass() {
        let pts = grid(60, 0.0);
        let d = ks2d_statistic(&pts, &pts).unwrap();
        assert_eq!(d, 0.0);
        let cfg = Ks2dConfig::new(0.05).unwrap();
        let o = ks2d_test(&pts, &pts, &cfg).unwrap();
        assert!(o.passes());
        assert!((o.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_clusters_fail() {
        let cfg = Ks2dConfig::new(0.05).unwrap();
        let r = grid(80, 0.0);
        let t = grid(80, 100.0);
        let o = ks2d_test(&r, &t, &cfg).unwrap();
        assert!(o.rejected, "{o:?}");
        assert!(o.statistic > 0.9);
        assert!(o.p_value < 1e-6);
    }

    #[test]
    fn statistic_is_symmetric() {
        let r = grid(40, 0.0);
        let t = grid(30, 1.0);
        let a = ks2d_statistic(&r, &t).unwrap();
        let b = ks2d_statistic(&t, &r).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn same_distribution_usually_passes() {
        // Two deterministic interleaved halves of the same grid.
        let all = grid(200, 0.0);
        let r: Vec<Point2> = all.iter().step_by(2).copied().collect();
        let t: Vec<Point2> = all.iter().skip(1).step_by(2).copied().collect();
        let cfg = Ks2dConfig::new(0.05).unwrap();
        let o = ks2d_test(&r, &t, &cfg).unwrap();
        assert!(o.passes(), "{o:?}");
    }

    #[test]
    fn pearson_r_of_correlated_data() {
        let pts =
            points_from_xy(&(0..50).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect::<Vec<_>>());
        assert!((pearson_r(&pts) - 1.0).abs() < 1e-9);
        let anti = points_from_xy(&(0..50).map(|i| (i as f64, -i as f64)).collect::<Vec<_>>());
        assert!((pearson_r(&anti) + 1.0).abs() < 1e-9);
        let flat = points_from_xy(&[(1.0, 2.0), (1.0, 2.0)]);
        assert_eq!(pearson_r(&flat), 0.0);
    }

    #[test]
    fn p_value_monotone_in_statistic() {
        let p1 = ks2d_p_value(0.1, 100, 100, 0.0, 0.0);
        let p2 = ks2d_p_value(0.3, 100, 100, 0.0, 0.0);
        assert!(p1 > p2);
        // Correlation shrinks the effective deviation scale, raising power.
        let p_uncorr = ks2d_p_value(0.2, 100, 100, 0.0, 0.0);
        let p_corr = ks2d_p_value(0.2, 100, 100, 0.9, 0.9);
        assert!(p_corr < p_uncorr);
    }

    #[test]
    fn quadrant_fractions_sum_to_at_most_one() {
        let pts = grid(30, 0.0);
        for &origin in &pts {
            let f = quadrant_fractions(origin, &pts);
            let sum: f64 = f.iter().sum();
            assert!(sum <= 1.0 + 1e-12);
            assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        let cfg = Ks2dConfig::new(0.05).unwrap();
        let good = grid(10, 0.0);
        assert!(ks2d_test(&[], &good, &cfg).is_err());
        assert!(ks2d_test(&good, &[], &cfg).is_err());
        let bad = vec![Point2::new(f64::NAN, 0.0)];
        assert!(ks2d_test(&bad, &good, &cfg).is_err());
        assert!(Ks2dConfig::new(1.5).is_err());
    }

    #[test]
    fn statistic_after_removal_removes_exactly() {
        let r = grid(20, 0.0);
        let t = grid(20, 5.0);
        let mut scratch = RemovalScratch::default();
        let d = statistic_after_removal(&r, &t, &[0, 5, 19], &mut scratch);
        assert_eq!(scratch.kept().len(), 17);
        let kept = scratch.kept();
        assert!(!kept.contains(&t[0]) || t.iter().filter(|&&p| p == t[0]).count() > 1);
        // A second call with the same scratch reuses the buffers and agrees.
        let again = statistic_after_removal(&r, &t, &[0, 5, 19], &mut scratch);
        assert_eq!(d.to_bits(), again.to_bits());
    }
}
