//! Streaming 2-D explanation — bounded-memory window processing with
//! in-order delivery, mirroring `moche_core::StreamingBatchExplainer`.
//!
//! A feeder thread (the caller) pulls windows from a [`Window2dSource`]
//! and hands them to a scoped worker pool over a recycled buffer pool, so
//! only `O(workers + buffer)` windows are in memory at a time regardless of
//! stream length. Results are re-ordered and delivered to the sink in
//! window order; worker panics are isolated per window exactly as in
//! [`Batch2dExplainer`](crate::batch2d::Batch2dExplainer).
//!
//! ```
//! use moche_multidim::{Point2, RankIndex2d, Stream2dExplainer};
//!
//! let reference: Vec<Point2> =
//!     (0..80).map(|i| Point2::new(f64::from(i % 9), f64::from(i % 7))).collect();
//! let index = RankIndex2d::new(&reference).unwrap();
//! let mut remaining = 3usize;
//! let source = |window: &mut Vec<Point2>| {
//!     if remaining == 0 {
//!         return false;
//!     }
//!     remaining -= 1;
//!     window.extend(reference.iter().take(40));
//!     window.extend((0..25).map(|i| Point2::new(f64::from(i) + 60.0, 60.0)));
//!     true
//! };
//! let summary = Stream2dExplainer::new(0.05).unwrap().threads(1).explain_source(
//!     &index,
//!     source,
//!     None,
//!     |result| assert!(result.result.is_ok()),
//! );
//! assert_eq!(summary.windows, 3);
//! assert_eq!(summary.explained, 3);
//! ```

use crate::engine2d::Explain2dEngine;
use crate::explain2d::Explanation2d;
use crate::ks2d::Ks2dConfig;
use crate::point2::Point2;
use crate::rank_index::RankIndex2d;
use moche_core::fault::{self, Fault};
use moche_core::{MocheError, PreferenceList};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};

/// A pull source of 2-D windows: fill the (cleared) buffer and return
/// `true`, or return `false` to end the stream.
pub trait Window2dSource {
    /// Fills `window` with the next window's points. The buffer arrives
    /// empty (possibly with recycled capacity).
    fn fill(&mut self, window: &mut Vec<Point2>) -> bool;
}

impl<F: FnMut(&mut Vec<Point2>) -> bool> Window2dSource for F {
    fn fill(&mut self, window: &mut Vec<Point2>) -> bool {
        self(window)
    }
}

/// A per-window preference scorer for the streaming path: window ordinal
/// and points in, preference out.
pub type Score2dFn<'a> =
    &'a (dyn Fn(usize, &[Point2]) -> Result<PreferenceList, MocheError> + Sync);

/// One delivered streaming result.
#[derive(Debug)]
pub struct Stream2dResult {
    /// The window's ordinal in the stream (0-based).
    pub window: usize,
    /// The window's explanation or per-window failure.
    pub result: Result<Explanation2d, MocheError>,
}

/// Aggregate accounting of a streaming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stream2dSummary {
    /// Windows pulled from the source.
    pub windows: usize,
    /// Windows that produced an explanation.
    pub explained: usize,
    /// Windows that already passed the test (nothing to explain).
    pub passing: usize,
    /// Windows that failed, including panics.
    pub errors: usize,
    /// The subset of `errors` caused by isolated worker panics.
    pub panics: usize,
    /// Worker threads used.
    pub threads: usize,
}

impl Stream2dSummary {
    fn tally(&mut self, result: &Result<Explanation2d, MocheError>) {
        self.windows += 1;
        match result {
            Ok(_) => self.explained += 1,
            Err(MocheError::TestAlreadyPasses { .. }) => self.passing += 1,
            Err(MocheError::WorkerPanicked { .. }) => {
                self.errors += 1;
                self.panics += 1;
            }
            Err(_) => self.errors += 1,
        }
    }
}

/// A streaming explainer for unbounded sequences of 2-D windows against one
/// shared reference index.
#[derive(Debug, Clone)]
pub struct Stream2dExplainer {
    cfg: Ks2dConfig,
    threads: usize,
    buffer: usize,
}

impl Stream2dExplainer {
    /// Creates a streaming explainer at significance level `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        Ok(Self::with_config(Ks2dConfig::new(alpha)?))
    }

    /// Creates a streaming explainer from an existing configuration.
    pub fn with_config(cfg: Ks2dConfig) -> Self {
        Self { cfg, threads: 0, buffer: 0 }
    }

    /// Caps the worker count (0 = use all available cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Caps the number of windows in flight (0 = `2 × workers`).
    #[must_use]
    pub fn buffer(mut self, buffer: usize) -> Self {
        self.buffer = buffer;
        self
    }

    /// The worker count a run would use.
    pub fn effective_threads(&self) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cap = if self.threads == 0 { hw } else { self.threads };
        cap.max(1)
    }

    /// Drains `source`, delivering every window's result to `sink` in
    /// window order, and returns the aggregate summary. A panicking source
    /// ends the stream early (windows already dispatched still complete and
    /// are delivered); a panicking sink propagates after the pool shuts
    /// down cleanly.
    pub fn explain_source<S: Window2dSource>(
        &self,
        index: &RankIndex2d,
        mut source: S,
        preferences: Option<Score2dFn<'_>>,
        mut sink: impl FnMut(&Stream2dResult),
    ) -> Stream2dSummary {
        let workers = self.effective_threads();
        let mut summary = Stream2dSummary { threads: workers, ..Default::default() };

        if workers <= 1 {
            let mut engine = Explain2dEngine::with_config(self.cfg);
            let mut window: Vec<Point2> = Vec::new();
            let mut w = 0usize;
            loop {
                window.clear();
                let filled = catch_unwind(AssertUnwindSafe(|| {
                    if fault::failpoint("stream2d.feeder") == Some(Fault::Error) {
                        return false;
                    }
                    source.fill(&mut window)
                }));
                if !matches!(filled, Ok(true)) {
                    break;
                }
                let result = run_one(&self.cfg, &mut engine, index, &window, w, preferences);
                summary.tally(&result);
                sink(&Stream2dResult { window: w, result });
                w += 1;
            }
            return summary;
        }

        let in_flight_cap = if self.buffer == 0 { 2 * workers } else { self.buffer.max(1) };
        let (job_tx, job_rx) = mpsc::channel::<(usize, Vec<Point2>)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) =
            mpsc::channel::<(usize, Vec<Point2>, Result<Explanation2d, MocheError>)>();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    let mut engine = Explain2dEngine::with_config(self.cfg);
                    loop {
                        let job = job_rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                        let (w, window) = match job {
                            Ok(job) => job,
                            Err(_) => break, // feeder hung up: drain complete
                        };
                        let result =
                            run_one(&self.cfg, &mut engine, index, &window, w, preferences);
                        if result_tx.send((w, window, result)).is_err() {
                            break; // collector is gone (sink panic unwinding)
                        }
                    }
                });
            }
            drop(result_tx); // workers hold the only remaining senders

            // Feed and collect on this thread. A sink panic must not abandon
            // the scope (that would deadlock on workers blocked in recv), so
            // the loop is caught, the job channel is closed to stop the
            // pool, and the payload is re-thrown after the scope joins.
            let deliver = catch_unwind(AssertUnwindSafe(|| {
                let mut free: Vec<Vec<Point2>> = Vec::new();
                let mut pending: BTreeMap<usize, Result<Explanation2d, MocheError>> =
                    BTreeMap::new();
                let mut next_window = 0usize;
                let mut next_delivery = 0usize;
                let mut in_flight = 0usize;
                let mut exhausted = false;
                loop {
                    while !exhausted && in_flight < in_flight_cap {
                        let mut window = free.pop().unwrap_or_default();
                        window.clear();
                        let filled = catch_unwind(AssertUnwindSafe(|| {
                            if fault::failpoint("stream2d.feeder") == Some(Fault::Error) {
                                return false;
                            }
                            source.fill(&mut window)
                        }));
                        if !matches!(filled, Ok(true)) {
                            exhausted = true;
                            break;
                        }
                        if job_tx.send((next_window, window)).is_err() {
                            exhausted = true;
                            break;
                        }
                        next_window += 1;
                        in_flight += 1;
                    }
                    if in_flight == 0 {
                        break;
                    }
                    let (w, window, result) = match result_rx.recv() {
                        Ok(delivered) => delivered,
                        Err(_) => break,
                    };
                    free.push(window);
                    in_flight -= 1;
                    pending.insert(w, result);
                    while let Some(result) = pending.remove(&next_delivery) {
                        summary.tally(&result);
                        sink(&Stream2dResult { window: next_delivery, result });
                        next_delivery += 1;
                    }
                }
            }));
            drop(job_tx);
            if let Err(payload) = deliver {
                // Workers exit on the closed channel; scope join is safe.
                resume_unwind(payload);
            }
        });
        summary
    }
}

/// Executes one window with panic isolation and optional scoring; shared by
/// the sequential and pooled paths.
fn run_one(
    cfg: &Ks2dConfig,
    engine: &mut Explain2dEngine,
    index: &RankIndex2d,
    window: &[Point2],
    w: usize,
    preferences: Option<Score2dFn<'_>>,
) -> Result<Explanation2d, MocheError> {
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        fault::failpoint("stream2d.worker");
        let stored;
        let preference = match preferences {
            Some(score) => {
                stored = score(w, window)?;
                Some(&stored)
            }
            None => None,
        };
        engine.explain(index, window, preference)
    }));
    match attempt {
        Ok(result) => result,
        Err(payload) => {
            *engine = Explain2dEngine::with_config(*cfg);
            Err(MocheError::WorkerPanicked {
                window: w,
                message: fault::panic_message(payload.as_ref()),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain2d::GreedyImpact2d;

    fn grid(n: usize, ox: f64, oy: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                Point2::new(((i * 7) % 13) as f64 * 0.31 + ox, ((i * 11) % 17) as f64 * 0.23 + oy)
            })
            .collect()
    }

    fn windows(count: usize) -> Vec<Vec<Point2>> {
        (0..count)
            .map(|w| {
                let mut t = grid(60, 0.01 * (w as f64 + 1.0), 0.02);
                t.extend(grid(18 + (w % 5), 50.0, 50.0));
                t
            })
            .collect()
    }

    fn vec_source(mut queue: std::vec::IntoIter<Vec<Point2>>) -> impl Window2dSource {
        move |out: &mut Vec<Point2>| match queue.next() {
            Some(points) => {
                out.extend(points);
                true
            }
            None => false,
        }
    }

    #[test]
    fn stream_delivers_in_order_and_matches_naive() {
        let r = grid(120, 0.0, 0.0);
        let cfg = Ks2dConfig::new(0.05).unwrap();
        let index = RankIndex2d::new(&r).unwrap();
        let all = windows(8);
        for threads in [1usize, 4] {
            let mut seen: Vec<usize> = Vec::new();
            let mut outputs: Vec<Vec<usize>> = Vec::new();
            let summary = Stream2dExplainer::with_config(cfg)
                .threads(threads)
                .buffer(3)
                .explain_source(&index, vec_source(all.clone().into_iter()), None, |delivered| {
                    seen.push(delivered.window);
                    outputs.push(delivered.result.as_ref().unwrap().indices.clone());
                });
            assert_eq!(summary.windows, all.len(), "threads={threads}");
            assert_eq!(summary.explained, all.len());
            assert_eq!(summary.threads, threads);
            assert_eq!(seen, (0..all.len()).collect::<Vec<_>>(), "in-order delivery");
            for (w, indices) in outputs.iter().enumerate() {
                let naive = GreedyImpact2d.explain(&r, &all[w], &cfg, None).unwrap();
                assert_eq!(indices, &naive.indices, "window {w}");
            }
        }
    }

    #[test]
    fn per_window_failures_are_tallied_not_fatal() {
        let r = grid(120, 0.0, 0.0);
        let cfg = Ks2dConfig::new(0.05).unwrap();
        let index = RankIndex2d::new(&r).unwrap();
        let mut all = windows(5);
        all[1] = r.clone(); // passes
        all[3] = vec![Point2::new(f64::NAN, 0.0)];
        for threads in [1usize, 3] {
            let mut failed: Vec<usize> = Vec::new();
            let summary = Stream2dExplainer::with_config(cfg).threads(threads).explain_source(
                &index,
                vec_source(all.clone().into_iter()),
                None,
                |delivered| {
                    if delivered.result.is_err() {
                        failed.push(delivered.window);
                    }
                },
            );
            assert_eq!(summary.windows, 5);
            assert_eq!(summary.explained, 3);
            assert_eq!(summary.passing, 1);
            assert_eq!(summary.errors, 1);
            assert_eq!(summary.panics, 0);
            assert_eq!(failed, vec![1, 3]);
        }
    }

    #[test]
    fn scored_preferences_flow_into_the_engine() {
        let r = grid(120, 0.0, 0.0);
        let cfg = Ks2dConfig::new(0.05).unwrap();
        let index = RankIndex2d::new(&r).unwrap();
        let all = windows(3);
        let score: Score2dFn<'_> = &|_, points| {
            let scores: Vec<f64> = points.iter().map(|p| p.x + p.y).collect();
            PreferenceList::from_scores_desc(&scores)
        };
        let mut outputs: Vec<Vec<usize>> = Vec::new();
        let summary = Stream2dExplainer::with_config(cfg).threads(2).explain_source(
            &index,
            vec_source(all.clone().into_iter()),
            Some(score),
            |delivered| outputs.push(delivered.result.as_ref().unwrap().indices.clone()),
        );
        assert_eq!(summary.explained, 3);
        for (w, indices) in outputs.iter().enumerate() {
            let scores: Vec<f64> = all[w].iter().map(|p| p.x + p.y).collect();
            let pref = PreferenceList::from_scores_desc(&scores).unwrap();
            let naive = GreedyImpact2d.explain(&r, &all[w], &cfg, Some(&pref)).unwrap();
            assert_eq!(indices, &naive.indices, "window {w}");
        }
    }

    #[test]
    fn empty_stream_is_a_clean_summary() {
        let r = grid(40, 0.0, 0.0);
        let index = RankIndex2d::new(&r).unwrap();
        let summary = Stream2dExplainer::new(0.05).unwrap().threads(2).explain_source(
            &index,
            |_: &mut Vec<Point2>| false,
            None,
            |_| panic!("no windows, no deliveries"),
        );
        assert_eq!(summary, Stream2dSummary { threads: 2, ..Default::default() });
    }

    #[test]
    fn panicking_source_ends_the_stream_early() {
        let r = grid(120, 0.0, 0.0);
        let index = RankIndex2d::new(&r).unwrap();
        let all = windows(4);
        let mut queue = all.into_iter();
        let mut fed = 0usize;
        let source = move |out: &mut Vec<Point2>| {
            if fed == 2 {
                panic!("source failed mid-stream");
            }
            fed += 1;
            out.extend(queue.next().unwrap());
            true
        };
        let mut delivered = 0usize;
        let summary = Stream2dExplainer::new(0.05).unwrap().threads(2).explain_source(
            &index,
            source,
            None,
            |_| delivered += 1,
        );
        assert_eq!(summary.windows, 2, "the two windows fed before the panic");
        assert_eq!(delivered, 2);
    }
}
