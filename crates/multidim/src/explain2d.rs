//! Counterfactual explanations on failed 2-D KS tests — a working
//! prototype of the MOCHE paper's declared future work.
//!
//! The 1-D algorithm's optimality rests on the cumulative-vector bounds of
//! Lemma 1, which exploit the total order of the real line; no such order
//! exists in 2-D, and whether minimum explanations can be found in
//! polynomial time there is open. This module therefore provides two
//! *heuristic* explainers with the same contract as the baselines (the
//! returned set always reverses the failed test; minimality is best-effort
//! and documented as such):
//!
//! * [`GreedyPrefix2d`] — the GRD recipe: remove points in preference
//!   order until the test passes. Linear number of test evaluations.
//! * [`GreedyImpact2d`] — steepest-descent: repeatedly remove the point
//!   whose removal most reduces the FF statistic (ties broken by
//!   preference rank), then *prune* the result back (drop any point whose
//!   return keeps the test passing, scanning in reverse preference order)
//!   so the final set is irreducible — no proper subset obtained by
//!   dropping one point still reverses the test.

use crate::ks2d::{
    ks2d_p_value, ks2d_test, pearson_r, statistic_after_removal, Ks2dConfig, Ks2dOutcome,
    RemovalScratch,
};
use crate::point2::Point2;
use moche_core::{MocheError, PreferenceList};

/// An explanation on a failed 2-D KS test.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation2d {
    /// Selected original test indices, most preferred first.
    pub indices: Vec<usize>,
    /// The failing outcome that was explained.
    pub outcome_before: Ks2dOutcome,
    /// The outcome after removal — always passing.
    pub outcome_after: Ks2dOutcome,
}

impl Explanation2d {
    /// Explanation size.
    pub fn size(&self) -> usize {
        self.indices.len()
    }
}

/// One removal evaluation of the naive path: statistic plus significance
/// over the kept subset. `ref_r` is `pearson_r(reference)` hoisted by the
/// caller (it never changes across a descent), and `scratch` recycles the
/// keep mask and kept buffer across the `O(m²)` candidate scans.
fn outcome_of_removal(
    reference: &[Point2],
    test: &[Point2],
    removed: &[usize],
    cfg: &Ks2dConfig,
    ref_r: f64,
    scratch: &mut RemovalScratch,
) -> Ks2dOutcome {
    let d = statistic_after_removal(reference, test, removed, scratch);
    let kept = scratch.kept();
    let p_value = ks2d_p_value(d, reference.len(), kept.len(), ref_r, pearson_r(kept));
    Ks2dOutcome {
        statistic: d,
        p_value,
        rejected: p_value < cfg.alpha,
        n: reference.len(),
        m: kept.len(),
    }
}

fn prepare(
    reference: &[Point2],
    test: &[Point2],
    cfg: &Ks2dConfig,
    preference: Option<&PreferenceList>,
) -> Result<(Ks2dOutcome, PreferenceList), MocheError> {
    if let Some(p) = preference {
        p.check_length(test.len())?;
    }
    let before = ks2d_test(reference, test, cfg)?;
    if before.passes() {
        return Err(MocheError::TestAlreadyPasses {
            statistic: before.statistic,
            threshold: cfg.alpha,
        });
    }
    let pref = preference.cloned().unwrap_or_else(|| PreferenceList::identity(test.len()));
    Ok((before, pref))
}

/// GRD-style preference-prefix explanation for failed 2-D KS tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPrefix2d;

impl GreedyPrefix2d {
    /// Explains the failed test by removing preference-ordered points until
    /// it passes.
    ///
    /// # Errors
    ///
    /// * [`MocheError::TestAlreadyPasses`] when there is nothing to explain.
    /// * [`MocheError::NoExplanation`] when even removing all but one point
    ///   does not reverse the test.
    /// * Validation errors.
    pub fn explain(
        &self,
        reference: &[Point2],
        test: &[Point2],
        cfg: &Ks2dConfig,
        preference: Option<&PreferenceList>,
    ) -> Result<Explanation2d, MocheError> {
        let (before, pref) = prepare(reference, test, cfg, preference)?;
        let ref_r = pearson_r(reference);
        let mut scratch = RemovalScratch::default();
        let mut removed: Vec<usize> = Vec::new();
        for &idx in pref.as_order() {
            if removed.len() + 1 >= test.len() {
                break;
            }
            removed.push(idx);
            let outcome = outcome_of_removal(reference, test, &removed, cfg, ref_r, &mut scratch);
            if outcome.passes() {
                return Ok(Explanation2d {
                    indices: removed,
                    outcome_before: before,
                    outcome_after: outcome,
                });
            }
        }
        Err(MocheError::NoExplanation { alpha: cfg.alpha })
    }
}

/// Steepest-descent explanation with irreducibility pruning.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyImpact2d;

impl GreedyImpact2d {
    /// Explains the failed test by repeatedly removing the highest-impact
    /// point, then pruning to an irreducible set.
    ///
    /// # Errors
    ///
    /// As for [`GreedyPrefix2d::explain`].
    pub fn explain(
        &self,
        reference: &[Point2],
        test: &[Point2],
        cfg: &Ks2dConfig,
        preference: Option<&PreferenceList>,
    ) -> Result<Explanation2d, MocheError> {
        let (before, pref) = prepare(reference, test, cfg, preference)?;
        let ref_r = pearson_r(reference);
        let mut scratch = RemovalScratch::default();
        let ranks = pref.ranks();
        let m = test.len();
        let mut removed: Vec<usize> = Vec::new();
        let mut live: Vec<usize> = (0..m).collect();

        // Greedy descent on the statistic.
        while removed.len() + 1 < m {
            let outcome = outcome_of_removal(reference, test, &removed, cfg, ref_r, &mut scratch);
            if outcome.passes() {
                break;
            }
            // Pick the live point whose removal minimizes the statistic;
            // ties by preference rank.
            let mut best: Option<(f64, usize, usize)> = None; // (stat, rank, idx)
            for (pos, &idx) in live.iter().enumerate() {
                removed.push(idx);
                let d = statistic_after_removal(reference, test, &removed, &mut scratch);
                removed.pop();
                let candidate = (d, ranks[idx], pos);
                if best.is_none_or(|b| candidate < b) {
                    best = Some(candidate);
                }
            }
            // lint:allow(panic): the descent loop only runs while `live` is
            // non-empty, so a best candidate always exists
            let (_, _, pos) = best.expect("live points remain");
            removed.push(live.swap_remove(pos));
        }

        let outcome = outcome_of_removal(reference, test, &removed, cfg, ref_r, &mut scratch);
        if !outcome.passes() {
            return Err(MocheError::NoExplanation { alpha: cfg.alpha });
        }

        // Prune: re-admit points (worst preference first) whose return
        // keeps the test passing.
        let mut keep: Vec<usize> = removed.clone();
        keep.sort_by_key(|&i| std::cmp::Reverse(ranks[i]));
        for idx in keep {
            let trimmed: Vec<usize> = removed.iter().copied().filter(|&i| i != idx).collect();
            if trimmed.is_empty() {
                continue;
            }
            if outcome_of_removal(reference, test, &trimmed, cfg, ref_r, &mut scratch).passes() {
                removed = trimmed;
            }
        }

        let mut indices = removed;
        indices.sort_by_key(|&i| ranks[i]);
        let outcome_after = outcome_of_removal(reference, test, &indices, cfg, ref_r, &mut scratch);
        debug_assert!(outcome_after.passes());
        Ok(Explanation2d { indices, outcome_before: before, outcome_after })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: grid near the origin. Test: same grid plus an offset
    /// cluster that breaks the test.
    fn contaminated() -> (Vec<Point2>, Vec<Point2>, Ks2dConfig, usize) {
        let grid = |n: usize, ox: f64, oy: f64| -> Vec<Point2> {
            (0..n)
                .map(|i| {
                    Point2::new(
                        ((i * 7) % 13) as f64 * 0.31 + ox,
                        ((i * 11) % 17) as f64 * 0.23 + oy,
                    )
                })
                .collect()
        };
        let r = grid(120, 0.0, 0.0);
        let mut t = grid(60, 0.01, 0.02);
        let cluster = grid(25, 50.0, 50.0);
        let cluster_start = t.len();
        t.extend(cluster);
        (r, t, Ks2dConfig::new(0.05).unwrap(), cluster_start)
    }

    #[test]
    fn the_instance_fails() {
        let (r, t, cfg, _) = contaminated();
        assert!(ks2d_test(&r, &t, &cfg).unwrap().rejected);
    }

    #[test]
    fn greedy_prefix_reverses() {
        let (r, t, cfg, cluster_start) = contaminated();
        // Preference: cluster points first (simulating domain knowledge).
        let scores: Vec<f64> = t.iter().map(|p| p.x + p.y).collect();
        let pref = PreferenceList::from_scores_desc(&scores).unwrap();
        let e = GreedyPrefix2d.explain(&r, &t, &cfg, Some(&pref)).unwrap();
        assert!(e.outcome_after.passes());
        assert!(e.size() >= 1);
        // With a helpful preference the selection is mostly cluster points.
        let in_cluster = e.indices.iter().filter(|&&i| i >= cluster_start).count();
        assert!(in_cluster * 10 >= e.size() * 8, "{in_cluster} of {}", e.size());
    }

    #[test]
    fn greedy_impact_reverses_and_is_irreducible() {
        let (r, t, cfg, _) = contaminated();
        let e = GreedyImpact2d.explain(&r, &t, &cfg, None).unwrap();
        assert!(e.outcome_after.passes());
        // Irreducibility: dropping any single selected point breaks it.
        for drop in 0..e.size() {
            let trimmed: Vec<usize> = e
                .indices
                .iter()
                .enumerate()
                .filter_map(|(j, &i)| (j != drop).then_some(i))
                .collect();
            let o = outcome_of_removal(
                &r,
                &t,
                &trimmed,
                &cfg,
                pearson_r(&r),
                &mut RemovalScratch::default(),
            );
            assert!(o.rejected, "dropping {drop} still passes -> not irreducible");
        }
    }

    #[test]
    fn impact_explanation_not_larger_than_prefix_with_neutral_preference() {
        let (r, t, cfg, _) = contaminated();
        let pref = PreferenceList::identity(t.len());
        let prefix = GreedyPrefix2d.explain(&r, &t, &cfg, Some(&pref)).unwrap();
        let impact = GreedyImpact2d.explain(&r, &t, &cfg, Some(&pref)).unwrap();
        assert!(
            impact.size() <= prefix.size(),
            "impact {} > prefix {}",
            impact.size(),
            prefix.size()
        );
    }

    #[test]
    fn impact_targets_the_cluster() {
        let (r, t, cfg, cluster_start) = contaminated();
        let e = GreedyImpact2d.explain(&r, &t, &cfg, None).unwrap();
        let in_cluster = e.indices.iter().filter(|&&i| i >= cluster_start).count();
        assert!(
            in_cluster * 10 >= e.size() * 9,
            "only {in_cluster} of {} selected points are cluster points",
            e.size()
        );
    }

    #[test]
    fn passing_test_is_an_error() {
        let (r, _, cfg, _) = contaminated();
        match GreedyPrefix2d.explain(&r, &r, &cfg, None) {
            Err(MocheError::TestAlreadyPasses { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        match GreedyImpact2d.explain(&r, &r, &cfg, None) {
            Err(MocheError::TestAlreadyPasses { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn preference_length_mismatch_detected() {
        let (r, t, cfg, _) = contaminated();
        let pref = PreferenceList::identity(3);
        assert!(matches!(
            GreedyPrefix2d.explain(&r, &t, &cfg, Some(&pref)),
            Err(MocheError::PreferenceLengthMismatch { .. })
        ));
    }
}
