//! Rank-space acceleration of the Fasano-Franceschini statistic.
//!
//! The naive [`ks2d_statistic`](crate::ks2d::ks2d_statistic) rescans every
//! point of both samples for every origin — `O((n+m)²)` per evaluation —
//! and the greedy explainer calls it once per *candidate*, `O(m)` times per
//! descent round. This module replaces the rescans with cached per-origin
//! quadrant **counts**:
//!
//! * [`RankIndex2d`] is built once per reference sample `R`. It caches the
//!   quadrant counts of `R` around each of its own points (invariant under
//!   any test-set removal) and the hoisted Pearson correlation of `R`.
//! * [`Scratch2d`] binds the index to one test window `T`: three rank-space
//!   sweeps (`O((n+m) log (n+m))` total) produce the reference counts
//!   around the test origins and the live-test counts around *every*
//!   origin. Removing or restoring one test point patches those counts in
//!   `O(n + m)`; evaluating "the statistic if point `j` were also removed"
//!   is a read-only `O(n + m)` pass ([`Scratch2d::statistic_excluding`]).
//!
//! All counts are integers, so every statistic produced here divides the
//! **same integers by the same sample sizes** as the naive path and is
//! bit-identical to it — pinned by `tests/proptest_multidim.rs`.

use crate::ks2d::pearson_r;
use crate::point2::{validate_sample, Point2};
use moche_core::error::SetKind;
use moche_core::MocheError;

/// Quadrant of `p` around `origin` under the FF convention (`None` when the
/// point shares a coordinate with the origin and is excluded). The indices
/// match [`crate::ks2d`]: 0 = NE, 1 = NW, 2 = SW, 3 = SE.
#[inline]
pub(crate) fn quadrant_of(origin: Point2, p: Point2) -> Option<usize> {
    let dx = p.x - origin.x;
    let dy = p.y - origin.y;
    if dx == 0.0 || dy == 0.0 {
        return None;
    }
    Some(match (dx > 0.0, dy > 0.0) {
        (true, true) => 0,
        (false, true) => 1,
        (false, false) => 2,
        (true, false) => 3,
    })
}

/// Reusable buffers for the batched quadrant-count sweeps.
#[derive(Debug, Default, Clone)]
pub(crate) struct QuadrantSweep {
    sample_order: Vec<usize>,
    origin_order: Vec<usize>,
    ys: Vec<f64>,
    bit: Vec<u32>,
}

impl QuadrantSweep {
    fn sort_by_x(order: &mut Vec<usize>, pts: &[Point2]) {
        order.clear();
        order.extend(0..pts.len());
        order.sort_unstable_by(|&a, &b| pts[a].x.total_cmp(&pts[b].x).then_with(|| a.cmp(&b)));
    }

    fn bit_add(bit: &mut [u32], idx: usize) {
        let mut i = idx + 1;
        while i < bit.len() {
            bit[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    fn bit_prefix(bit: &[u32], idx: usize) -> u32 {
        let mut i = idx;
        let mut sum = 0u32;
        while i > 0 {
            sum += bit[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Counts, for every origin, how many sample points fall strictly
    /// inside each of its four quadrants (the FF convention: points sharing
    /// an x or y coordinate with the origin are excluded).
    ///
    /// Two x-sweeps with a Fenwick tree over the sample's y-ranks: the
    /// ascending sweep has inserted exactly the points with `x < origin.x`
    /// when an origin is answered, so rank prefix sums yield its SW and NW
    /// counts; the descending sweep mirrors this for SE and NE. Total cost
    /// `O((s + o) log s)` against the naive rescan's `O(s · o)`. Duplicates
    /// and signed zeros are handled by the strict numeric comparisons,
    /// which agree with the total order used for sorting everywhere except
    /// `-0.0`/`0.0` — adjacent in the total order and numerically equal, so
    /// both partition points remain valid.
    pub(crate) fn count_into(
        &mut self,
        sample: &[Point2],
        origins: &[Point2],
        out: &mut Vec<[u32; 4]>,
    ) {
        Self::sort_by_x(&mut self.sample_order, sample);
        Self::sort_by_x(&mut self.origin_order, origins);
        self.ys.clear();
        self.ys.extend(sample.iter().map(|p| p.y));
        self.ys.sort_unstable_by(f64::total_cmp);
        out.clear();
        out.resize(origins.len(), [0u32; 4]);

        self.bit.clear();
        self.bit.resize(sample.len() + 1, 0);
        let mut si = 0usize;
        let mut inserted = 0u32;
        for &oi in &self.origin_order {
            let o = origins[oi];
            while si < self.sample_order.len() && sample[self.sample_order[si]].x < o.x {
                let rank = self.ys.partition_point(|&y| y < sample[self.sample_order[si]].y);
                Self::bit_add(&mut self.bit, rank);
                inserted += 1;
                si += 1;
            }
            let below = Self::bit_prefix(&self.bit, self.ys.partition_point(|&y| y < o.y));
            let at_or_below = Self::bit_prefix(&self.bit, self.ys.partition_point(|&y| y <= o.y));
            out[oi][2] = below; // SW: x < o.x, y < o.y
            out[oi][1] = inserted - at_or_below; // NW: x < o.x, y > o.y
        }

        self.bit.clear();
        self.bit.resize(sample.len() + 1, 0);
        let mut si = self.sample_order.len();
        let mut inserted = 0u32;
        for &oi in self.origin_order.iter().rev() {
            let o = origins[oi];
            while si > 0 && sample[self.sample_order[si - 1]].x > o.x {
                si -= 1;
                let rank = self.ys.partition_point(|&y| y < sample[self.sample_order[si]].y);
                Self::bit_add(&mut self.bit, rank);
                inserted += 1;
            }
            let below = Self::bit_prefix(&self.bit, self.ys.partition_point(|&y| y < o.y));
            let at_or_below = Self::bit_prefix(&self.bit, self.ys.partition_point(|&y| y <= o.y));
            out[oi][3] = below; // SE: x > o.x, y < o.y
            out[oi][0] = inserted - at_or_below; // NE: x > o.x, y > o.y
        }
    }
}

/// A per-reference rank structure for the 2-D KS statistic: built once per
/// `R`, shared read-only by every window explained against it (the 2-D
/// analogue of `moche_core::ReferenceIndex`).
#[derive(Debug, Clone)]
pub struct RankIndex2d {
    reference: Vec<Point2>,
    /// Quadrant counts of the reference around each of its own points —
    /// invariant under test-set removals.
    pub(crate) self_counts: Vec<[u32; 4]>,
    ref_pearson: f64,
}

impl RankIndex2d {
    /// Builds the index over `reference`.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::EmptyReference`] or
    /// [`MocheError::NonFiniteValue`] for invalid samples.
    pub fn new(reference: &[Point2]) -> Result<Self, MocheError> {
        validate_sample(reference, SetKind::Reference)?;
        let mut sweep = QuadrantSweep::default();
        let mut self_counts = Vec::new();
        sweep.count_into(reference, reference, &mut self_counts);
        Ok(Self { reference: reference.to_vec(), self_counts, ref_pearson: pearson_r(reference) })
    }

    /// `|R|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.reference.len()
    }

    /// The indexed reference sample.
    #[inline]
    pub fn reference(&self) -> &[Point2] {
        &self.reference
    }

    /// The Pearson correlation of the reference's coordinates, hoisted here
    /// so the p-value path never recomputes it per evaluation.
    #[inline]
    pub fn reference_pearson(&self) -> f64 {
        self.ref_pearson
    }
}

/// Per-window count state over a [`RankIndex2d`]: every buffer is reused
/// across windows, so a warm scratch binds and evaluates with zero marginal
/// heap allocations.
#[derive(Debug, Default, Clone)]
pub struct Scratch2d {
    sweep: QuadrantSweep,
    /// Reference points around each test origin (invariant under removals).
    ref_at_test: Vec<[u32; 4]>,
    /// Live test points around each reference origin.
    test_at_ref: Vec<[u32; 4]>,
    /// Live test points around each test origin.
    test_at_test: Vec<[u32; 4]>,
    removed: Vec<bool>,
    live: usize,
}

impl Scratch2d {
    /// An empty scratch; the first [`bind`](Self::bind) sizes its buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds this scratch to one `(index, test)` window, rebuilding every
    /// per-origin quadrant count with no points removed. `O((n+m) log
    /// (n+m))` via three rank-space sweeps.
    pub fn bind(&mut self, index: &RankIndex2d, test: &[Point2]) {
        self.sweep.count_into(index.reference(), test, &mut self.ref_at_test);
        self.sweep.count_into(test, index.reference(), &mut self.test_at_ref);
        self.sweep.count_into(test, test, &mut self.test_at_test);
        self.removed.clear();
        self.removed.resize(test.len(), false);
        self.live = test.len();
    }

    /// Number of test points not currently removed.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Whether test point `j` is currently removed.
    #[inline]
    pub fn is_removed(&self, j: usize) -> bool {
        self.removed[j]
    }

    /// Removes test point `j`: patches the live-test counts around every
    /// origin in `O(n + m)`.
    pub fn remove(&mut self, index: &RankIndex2d, test: &[Point2], j: usize) {
        debug_assert!(!self.removed[j], "removing an already-removed point");
        self.patch(index, test, j, false);
        self.removed[j] = true;
        self.live -= 1;
    }

    /// Restores a removed test point `j` (the prune phase's re-admission).
    pub fn restore(&mut self, index: &RankIndex2d, test: &[Point2], j: usize) {
        debug_assert!(self.removed[j], "restoring a point that is not removed");
        self.removed[j] = false;
        self.live += 1;
        self.patch(index, test, j, true);
    }

    fn patch(&mut self, index: &RankIndex2d, test: &[Point2], j: usize, add: bool) {
        let p = test[j];
        let delta = if add { 1u32 } else { 1u32.wrapping_neg() };
        for (i, &origin) in index.reference().iter().enumerate() {
            if let Some(q) = quadrant_of(origin, p) {
                self.test_at_ref[i][q] = self.test_at_ref[i][q].wrapping_add(delta);
            }
        }
        for (t, &origin) in test.iter().enumerate() {
            if let Some(q) = quadrant_of(origin, p) {
                self.test_at_test[t][q] = self.test_at_test[t][q].wrapping_add(delta);
            }
        }
    }

    /// The FF statistic of `(R, live test points)` — bit-identical to the
    /// naive statistic on the materialized kept subset: identical integer
    /// counts divided by identical sample sizes, maximized over the same
    /// multiset of quadrant discrepancies.
    pub fn statistic(&self, index: &RankIndex2d) -> f64 {
        if self.live == 0 {
            // The naive path reports an empty kept subset as statistic 0.
            return 0.0;
        }
        let nf = index.n() as f64;
        let mf = self.live as f64;
        let mut d = 0.0f64;
        for (rc, tc) in index.self_counts.iter().zip(&self.test_at_ref) {
            for q in 0..4 {
                let diff = (rc[q] as f64 / nf - tc[q] as f64 / mf).abs();
                if diff > d {
                    d = diff;
                }
            }
        }
        for (t, removed) in self.removed.iter().enumerate() {
            if *removed {
                continue;
            }
            let rc = &self.ref_at_test[t];
            let tc = &self.test_at_test[t];
            for q in 0..4 {
                let diff = (rc[q] as f64 / nf - tc[q] as f64 / mf).abs();
                if diff > d {
                    d = diff;
                }
            }
        }
        d
    }

    /// The statistic if live test point `j` were *also* removed — the
    /// greedy descent's candidate evaluation, a read-only `O(n + m)` pass
    /// instead of the naive rescan's `O((n + m)²)`.
    pub fn statistic_excluding(&self, index: &RankIndex2d, test: &[Point2], j: usize) -> f64 {
        debug_assert!(!self.removed[j], "candidate must be live");
        if self.live <= 1 {
            return 0.0;
        }
        let nf = index.n() as f64;
        let mf = (self.live - 1) as f64;
        let p = test[j];
        let mut d = 0.0f64;
        for (i, &origin) in index.reference().iter().enumerate() {
            let cq = quadrant_of(origin, p);
            let rc = &index.self_counts[i];
            let tc = &self.test_at_ref[i];
            for q in 0..4 {
                let count = tc[q] - u32::from(cq == Some(q));
                let diff = (rc[q] as f64 / nf - count as f64 / mf).abs();
                if diff > d {
                    d = diff;
                }
            }
        }
        for (t, &origin) in test.iter().enumerate() {
            if self.removed[t] || t == j {
                continue;
            }
            let cq = quadrant_of(origin, p);
            let rc = &self.ref_at_test[t];
            let tc = &self.test_at_test[t];
            for q in 0..4 {
                let count = tc[q] - u32::from(cq == Some(q));
                let diff = (rc[q] as f64 / nf - count as f64 / mf).abs();
                if diff > d {
                    d = diff;
                }
            }
        }
        d
    }

    /// Pearson correlation of the live test points, iterated in original
    /// index order — the same value sequence (and therefore the same bits)
    /// as [`pearson_r`] over the materialized kept subset.
    pub fn pearson_live(&self, test: &[Point2]) -> f64 {
        let n = self.live as f64;
        if self.live < 2 {
            return 0.0;
        }
        let mut sum_x = 0.0f64;
        for (t, p) in test.iter().enumerate() {
            if !self.removed[t] {
                sum_x += p.x;
            }
        }
        let mx = sum_x / n;
        let mut sum_y = 0.0f64;
        for (t, p) in test.iter().enumerate() {
            if !self.removed[t] {
                sum_y += p.y;
            }
        }
        let my = sum_y / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for (t, p) in test.iter().enumerate() {
            if self.removed[t] {
                continue;
            }
            let dx = p.x - mx;
            let dy = p.y - my;
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
        if sxx <= 0.0 || syy <= 0.0 {
            return 0.0;
        }
        (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
    }
}

/// The FF statistic computed through the rank-space index: `O((n+m) log
/// (n+m))` instead of the naive `O((n+m)²)`, bit-identical to
/// [`crate::ks2d::ks2d_statistic`].
///
/// # Errors
///
/// Returns an error for empty or non-finite test samples (the reference was
/// validated when the index was built).
pub fn ks2d_statistic_indexed(
    index: &RankIndex2d,
    test: &[Point2],
    scratch: &mut Scratch2d,
) -> Result<f64, MocheError> {
    validate_sample(test, SetKind::Test)?;
    scratch.bind(index, test);
    Ok(scratch.statistic(index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ks2d::ks2d_statistic;

    fn grid(n: usize, ox: f64, oy: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                Point2::new(((i * 7) % 13) as f64 * 0.31 + ox, ((i * 11) % 17) as f64 * 0.23 + oy)
            })
            .collect()
    }

    /// The naive quadrant counter the sweep must reproduce exactly.
    fn naive_counts(sample: &[Point2], origins: &[Point2]) -> Vec<[u32; 4]> {
        origins
            .iter()
            .map(|&o| {
                let mut counts = [0u32; 4];
                for &p in sample {
                    if let Some(q) = quadrant_of(o, p) {
                        counts[q] += 1;
                    }
                }
                counts
            })
            .collect()
    }

    #[test]
    fn sweep_matches_naive_counts_with_duplicates_and_signed_zeros() {
        let mut sample = grid(40, 0.0, 0.0);
        sample.push(sample[3]); // exact duplicate
        sample.push(Point2::new(-0.0, 0.62));
        sample.push(Point2::new(0.0, -0.0));
        let mut origins = grid(25, 0.31, -0.23);
        origins.push(Point2::new(0.0, 0.0));
        origins.push(sample[7]); // origin coincides with a sample point
        let mut sweep = QuadrantSweep::default();
        let mut out = Vec::new();
        sweep.count_into(&sample, &origins, &mut out);
        assert_eq!(out, naive_counts(&sample, &origins));
    }

    #[test]
    fn indexed_statistic_is_bit_identical_to_naive() {
        let r = grid(60, 0.0, 0.0);
        let t = grid(35, 0.4, 0.3);
        let index = RankIndex2d::new(&r).unwrap();
        let mut scratch = Scratch2d::new();
        let indexed = ks2d_statistic_indexed(&index, &t, &mut scratch).unwrap();
        let naive = ks2d_statistic(&r, &t).unwrap();
        assert_eq!(indexed.to_bits(), naive.to_bits());
    }

    #[test]
    fn removal_patches_match_a_fresh_bind() {
        let r = grid(50, 0.0, 0.0);
        let t = grid(30, 0.5, 0.2);
        let index = RankIndex2d::new(&r).unwrap();
        let mut scratch = Scratch2d::new();
        scratch.bind(&index, &t);
        for &j in &[3usize, 17, 8] {
            scratch.remove(&index, &t, j);
        }
        // The incrementally patched statistic must equal the naive
        // statistic over the materialized kept subset, bit for bit.
        let kept: Vec<Point2> = t
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| (![3usize, 17, 8].contains(&i)).then_some(p))
            .collect();
        let naive = ks2d_statistic(&r, &kept).unwrap();
        assert_eq!(scratch.statistic(&index).to_bits(), naive.to_bits());
        // Restore returns to the full-window statistic.
        for &j in &[3usize, 17, 8] {
            scratch.restore(&index, &t, j);
        }
        let full = ks2d_statistic(&r, &t).unwrap();
        assert_eq!(scratch.statistic(&index).to_bits(), full.to_bits());
    }

    #[test]
    fn statistic_excluding_matches_remove_then_statistic() {
        let r = grid(40, 0.0, 0.0);
        let t = grid(25, 0.7, 0.4);
        let index = RankIndex2d::new(&r).unwrap();
        let mut scratch = Scratch2d::new();
        scratch.bind(&index, &t);
        scratch.remove(&index, &t, 5);
        for j in 0..t.len() {
            if scratch.is_removed(j) {
                continue;
            }
            let candidate = scratch.statistic_excluding(&index, &t, j);
            scratch.remove(&index, &t, j);
            let actual = scratch.statistic(&index);
            scratch.restore(&index, &t, j);
            assert_eq!(candidate.to_bits(), actual.to_bits(), "candidate {j}");
        }
    }

    #[test]
    fn pearson_live_matches_materialized_subset() {
        let r = grid(20, 0.0, 0.0);
        let t = grid(18, 0.3, 0.9);
        let index = RankIndex2d::new(&r).unwrap();
        let mut scratch = Scratch2d::new();
        scratch.bind(&index, &t);
        scratch.remove(&index, &t, 2);
        scratch.remove(&index, &t, 11);
        let kept: Vec<Point2> =
            t.iter().enumerate().filter_map(|(i, &p)| (i != 2 && i != 11).then_some(p)).collect();
        assert_eq!(scratch.pearson_live(&t).to_bits(), pearson_r(&kept).to_bits());
    }

    #[test]
    fn index_rejects_invalid_references() {
        assert!(matches!(RankIndex2d::new(&[]), Err(MocheError::EmptyReference)));
        let bad = vec![Point2::new(0.0, f64::INFINITY)];
        assert!(matches!(RankIndex2d::new(&bad), Err(MocheError::NonFiniteValue { .. })));
    }
}
