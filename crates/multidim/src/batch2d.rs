//! Parallel batch explanation of 2-D windows — the multidimensional
//! counterpart of `moche_core::BatchExplainer`.
//!
//! One immutable [`RankIndex2d`] is shared read-only across a scoped worker
//! pool; each worker owns a warm [`Explain2dEngine`] reused for every
//! window it claims from an atomic cursor. Per-window failures (validation
//! errors, already-passing windows, even worker panics) are isolated to
//! their own result slot: a panic is caught, reported as
//! [`MocheError::WorkerPanicked`], the engine is rebuilt, and the worker
//! moves on.
//!
//! ```
//! use moche_multidim::{Batch2dExplainer, Point2, RankIndex2d};
//!
//! let reference: Vec<Point2> =
//!     (0..80).map(|i| Point2::new(f64::from(i % 9), f64::from(i % 7))).collect();
//! let mut window = reference.clone();
//! window.truncate(40);
//! window.extend((0..25).map(|i| Point2::new(f64::from(i) + 60.0, 60.0)));
//! let windows = vec![window.clone(), window];
//!
//! let index = RankIndex2d::new(&reference).unwrap();
//! let explainer = Batch2dExplainer::new(0.05).unwrap();
//! let results = explainer.explain_windows(&index, &windows, None);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

use crate::engine2d::Explain2dEngine;
use crate::explain2d::Explanation2d;
use crate::ks2d::Ks2dConfig;
use crate::point2::Point2;
use crate::rank_index::RankIndex2d;
use moche_core::{fault, MocheError, PreferenceList};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A thread-pooled explainer for batches of 2-D windows against one shared
/// reference index.
#[derive(Debug, Clone)]
pub struct Batch2dExplainer {
    cfg: Ks2dConfig,
    threads: usize,
}

impl Batch2dExplainer {
    /// Creates a batch explainer at significance level `alpha`, using all
    /// available cores.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        Ok(Self::with_config(Ks2dConfig::new(alpha)?))
    }

    /// Creates a batch explainer from an existing configuration.
    pub fn with_config(cfg: Ks2dConfig) -> Self {
        Self { cfg, threads: 0 }
    }

    /// Caps the worker count (0 = use all available cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &Ks2dConfig {
        &self.cfg
    }

    /// The number of worker threads a batch of `jobs` windows would use.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        self.worker_count(jobs)
    }

    fn worker_count(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cap = if self.threads == 0 { hw } else { self.threads };
        cap.min(jobs).max(1)
    }

    /// Explains every window against the shared index. Results keep the
    /// input order; each window fails or succeeds independently.
    ///
    /// `preferences`, when given, must provide one [`PreferenceList`] per
    /// window; a count mismatch fails every slot with
    /// [`MocheError::PreferenceCountMismatch`] rather than guessing an
    /// alignment.
    pub fn explain_windows<W: AsRef<[Point2]> + Sync>(
        &self,
        index: &RankIndex2d,
        windows: &[W],
        preferences: Option<&[PreferenceList]>,
    ) -> Vec<Result<Explanation2d, MocheError>> {
        if let Some(prefs) = preferences {
            if prefs.len() != windows.len() {
                let err = MocheError::PreferenceCountMismatch {
                    windows: windows.len(),
                    preferences: prefs.len(),
                };
                return windows.iter().map(|_| Err(err.clone())).collect();
            }
        }
        self.run(windows.len(), |engine, i| {
            engine.explain(index, windows[i].as_ref(), preferences.map(|p| &p[i]))
        })
    }

    fn run<F>(&self, jobs: usize, f: F) -> Vec<Result<Explanation2d, MocheError>>
    where
        F: Fn(&mut Explain2dEngine, usize) -> Result<Explanation2d, MocheError> + Sync,
    {
        let workers = self.worker_count(jobs);
        if workers <= 1 {
            let mut engine = Explain2dEngine::with_config(self.cfg);
            return (0..jobs).map(|i| self.run_one(&mut engine, &f, i)).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<Explanation2d, MocheError>>>> =
            (0..jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut engine = Explain2dEngine::with_config(self.cfg);
                    loop {
                        // lint:allow(relaxed): work-claim index — the RMW's
                        // atomicity alone partitions jobs; job inputs are
                        // published by the scoped-thread spawn, not this add.
                        // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        let result = self.run_one(&mut engine, &f, i);
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner().unwrap_or_else(PoisonError::into_inner).unwrap_or_else(|| {
                    Err(MocheError::WorkerPanicked {
                        window: i,
                        message: "result slot was never filled".to_string(),
                    })
                })
            })
            .collect()
    }

    fn run_one<F>(
        &self,
        engine: &mut Explain2dEngine,
        f: &F,
        i: usize,
    ) -> Result<Explanation2d, MocheError>
    where
        F: Fn(&mut Explain2dEngine, usize) -> Result<Explanation2d, MocheError>,
    {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            fault::failpoint("batch2d.worker");
            f(engine, i)
        }));
        match attempt {
            Ok(result) => result,
            Err(payload) => {
                // The engine's scratch may be mid-descent; rebuild it.
                *engine = Explain2dEngine::with_config(self.cfg);
                Err(MocheError::WorkerPanicked {
                    window: i,
                    message: fault::panic_message(payload.as_ref()),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain2d::GreedyImpact2d;

    fn fixture() -> (Vec<Point2>, Vec<Vec<Point2>>, Ks2dConfig) {
        let grid = |n: usize, ox: f64, oy: f64| -> Vec<Point2> {
            (0..n)
                .map(|i| {
                    Point2::new(
                        ((i * 7) % 13) as f64 * 0.31 + ox,
                        ((i * 11) % 17) as f64 * 0.23 + oy,
                    )
                })
                .collect()
        };
        let r = grid(120, 0.0, 0.0);
        let windows: Vec<Vec<Point2>> = (0..6)
            .map(|w| {
                let mut t = grid(60, 0.01 * (w as f64 + 1.0), 0.02);
                t.extend(grid(20 + w, 50.0, 50.0));
                t
            })
            .collect();
        (r, windows, Ks2dConfig::new(0.05).unwrap())
    }

    #[test]
    fn batch_matches_the_naive_explainer_per_window() {
        let (r, windows, cfg) = fixture();
        let index = RankIndex2d::new(&r).unwrap();
        let results = Batch2dExplainer::with_config(cfg).explain_windows(&index, &windows, None);
        assert_eq!(results.len(), windows.len());
        for (w, result) in results.iter().enumerate() {
            let naive = GreedyImpact2d.explain(&r, &windows[w], &cfg, None).unwrap();
            let fast = result.as_ref().unwrap();
            assert_eq!(fast.indices, naive.indices, "window {w}");
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (r, windows, cfg) = fixture();
        let index = RankIndex2d::new(&r).unwrap();
        let seq =
            Batch2dExplainer::with_config(cfg).threads(1).explain_windows(&index, &windows, None);
        let par =
            Batch2dExplainer::with_config(cfg).threads(4).explain_windows(&index, &windows, None);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.as_ref().unwrap().indices, b.as_ref().unwrap().indices);
        }
    }

    #[test]
    fn per_window_errors_are_isolated() {
        let (r, mut windows, cfg) = fixture();
        windows[2] = r.clone(); // passes: nothing to explain
        windows[4] = vec![Point2::new(f64::NAN, 0.0)];
        let index = RankIndex2d::new(&r).unwrap();
        let results = Batch2dExplainer::with_config(cfg).explain_windows(&index, &windows, None);
        assert!(results[0].is_ok());
        assert!(matches!(results[2], Err(MocheError::TestAlreadyPasses { .. })));
        assert!(matches!(results[4], Err(MocheError::NonFiniteValue { .. })));
        assert!(results[5].is_ok());
    }

    #[test]
    fn preference_count_mismatch_fails_every_slot() {
        let (r, windows, cfg) = fixture();
        let index = RankIndex2d::new(&r).unwrap();
        let prefs = vec![PreferenceList::identity(windows[0].len())];
        let results =
            Batch2dExplainer::with_config(cfg).explain_windows(&index, &windows, Some(&prefs));
        assert_eq!(results.len(), windows.len());
        for r in &results {
            assert!(matches!(
                r,
                Err(MocheError::PreferenceCountMismatch { windows: 6, preferences: 1 })
            ));
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let (r, _, cfg) = fixture();
        let index = RankIndex2d::new(&r).unwrap();
        let windows: Vec<Vec<Point2>> = Vec::new();
        assert!(Batch2dExplainer::with_config(cfg)
            .explain_windows(&index, &windows, None)
            .is_empty());
    }

    #[test]
    fn effective_threads_is_bounded_by_jobs() {
        let explainer = Batch2dExplainer::new(0.05).unwrap().threads(8);
        assert_eq!(explainer.effective_threads(3), 3);
        assert_eq!(explainer.effective_threads(0), 1);
        assert_eq!(Batch2dExplainer::new(0.05).unwrap().threads(2).effective_threads(100), 2);
    }
}
