//! 2-D data points for the multidimensional KS test.

use moche_core::error::{MocheError, SetKind};

/// A 2-D observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    /// First coordinate.
    pub x: f64,
    /// Second coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Whether both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point2) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// Builds points from `(x, y)` pairs.
pub fn points_from_xy(pairs: &[(f64, f64)]) -> Vec<Point2> {
    pairs.iter().map(|&(x, y)| Point2::new(x, y)).collect()
}

/// Validates one sample for the 2-D KS test: non-empty, finite. The shared
/// boundary check of every 2-D entry point — the naive test, the rank
/// index (reference side, at construction) and the engine (test side, per
/// window).
pub(crate) fn validate_sample(sample: &[Point2], which: SetKind) -> Result<(), MocheError> {
    if sample.is_empty() {
        return Err(match which {
            SetKind::Reference => MocheError::EmptyReference,
            SetKind::Test => MocheError::EmptyTest,
        });
    }
    for (index, p) in sample.iter().enumerate() {
        if !p.is_finite() {
            return Err(MocheError::NonFiniteValue {
                which,
                index,
                value: if p.x.is_finite() { p.y } else { p.x },
            });
        }
    }
    Ok(())
}

/// Validates two samples for the 2-D KS test: non-empty, finite.
pub fn validate_points(reference: &[Point2], test: &[Point2]) -> Result<(), MocheError> {
    if reference.is_empty() {
        return Err(MocheError::EmptyReference);
    }
    if test.is_empty() {
        return Err(MocheError::EmptyTest);
    }
    validate_sample(reference, SetKind::Reference)?;
    validate_sample(test, SetKind::Test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_distance() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert!(a.is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(!Point2::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn from_xy_preserves_order() {
        let pts = points_from_xy(&[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(pts[0], Point2::new(1.0, 2.0));
        assert_eq!(pts[1], Point2::new(3.0, 4.0));
    }

    #[test]
    fn validation_reports_side_and_index() {
        let good = vec![Point2::new(0.0, 0.0)];
        let bad = vec![Point2::new(0.0, 0.0), Point2::new(f64::NAN, 1.0)];
        match validate_points(&bad, &good) {
            Err(MocheError::NonFiniteValue { which: SetKind::Reference, index: 1, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        match validate_points(&good, &bad) {
            Err(MocheError::NonFiniteValue { which: SetKind::Test, index: 1, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(validate_points(&good, &good).is_ok());
        assert!(matches!(validate_points(&[], &good), Err(MocheError::EmptyReference)));
        assert!(matches!(validate_points(&good, &[]), Err(MocheError::EmptyTest)));
    }
}
