//! # moche-data
//!
//! Synthetic dataset generators and the sliding-window drift harness for
//! the MOCHE reproduction. The paper evaluates on the BC CDC COVID-19 case
//! lists and the Numenta Anomaly Benchmark (NAB) repository; neither is
//! redistributable here, so this crate provides seeded synthetic twins
//! calibrated to everything the paper reports about them (see `DESIGN.md`
//! §5 for each substitution's rationale):
//!
//! | Module | Contents |
//! |---|---|
//! | [`covid`] | the COVID-19 case study data (age groups × health authorities) |
//! | [`nab`] | the six NAB families of Table 1, with ground-truth anomalies |
//! | [`drift`] | Kifer-style synthetic drift pairs (Figure 5b's workload) |
//! | [`sliding`] | the sliding-window KS harness that extracts failed tests |
//! | [`dist`] | distribution samplers (normal, Poisson, ...) over any RNG |
//! | [`rng`] | deterministic seeding helpers |
//!
//! Everything is deterministic given a seed, so every experiment table in
//! `moche-bench` is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod covid;
pub mod dist;
pub mod drift;
pub mod nab;
pub mod rng;
pub mod sliding;

pub use covid::{CovidCase, CovidDataset, CovidParams, HealthAuthority};
pub use drift::{failing_kifer_pair, kifer_pair, DriftPair};
pub use nab::{generate_all, generate_family, NabFamily, NabSeries};
pub use sliding::{failed_windows, paper_failed_tests, sample_failed, FailedTest};
