//! Distribution samplers on top of any [`rand::Rng`].
//!
//! Implemented in-repo (Box-Muller, Knuth, inverse-CDF) instead of pulling
//! `rand_distr`, keeping the workspace on the approved dependency list; see
//! `DESIGN.md` §7.

use rand::{Rng, RngExt};

/// One draw from `N(mu, sigma^2)` via the Box-Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0);
    // Draw u1 in (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let mag = (-2.0 * u1.ln()).sqrt();
    mu + sigma * mag * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One draw from `U[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo < hi);
    rng.random_range(lo..hi)
}

/// One draw from `Exp(rate)` via inverse CDF.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / rate
}

/// One draw from `Poisson(lambda)`. Knuth's product method for small
/// `lambda`, a clamped normal approximation beyond 30 (fine for workload
/// synthesis).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        x.round().max(0.0) as u64
    }
}

/// One index drawn from a discrete distribution given by non-negative
/// `weights` (not necessarily normalized).
///
/// # Panics
///
/// Panics if all weights are zero or any is negative/non-finite.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "categorical needs at least one weight");
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative and finite");
            w
        })
        .sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn normal_moments() {
        let mut rng = rng_from_seed(11);
        let xs: Vec<f64> = (0..40_000).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = rng_from_seed(12);
        let xs: Vec<f64> = (0..20_000).map(|_| uniform(&mut rng, -7.0, 7.0)).collect();
        assert!(xs.iter().all(|&x| (-7.0..7.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = rng_from_seed(13);
        let xs: Vec<f64> = (0..30_000).map(|_| exponential(&mut rng, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = rng_from_seed(14);
        let xs: Vec<f64> = (0..30_000).map(|_| poisson(&mut rng, 4.0) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.25, "var = {var}");
    }

    #[test]
    fn poisson_large_lambda_approximation() {
        let mut rng = rng_from_seed(15);
        let xs: Vec<f64> = (0..20_000).map(|_| poisson(&mut rng, 100.0) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean = {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = rng_from_seed(16);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn categorical_frequencies_follow_weights() {
        let mut rng = rng_from_seed(17);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[categorical(&mut rng, &weights)] += 1;
        }
        let f1 = counts[1] as f64 / 30_000.0;
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((f1 - 0.3).abs() < 0.02, "f1 = {f1}");
        assert!((f2 - 0.6).abs() < 0.02, "f2 = {f2}");
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn categorical_rejects_zero_weights() {
        let mut rng = rng_from_seed(18);
        let _ = categorical(&mut rng, &[0.0, 0.0]);
    }
}
