//! Synthetic drift workloads after Kifer, Ben-David and Gehrke, *Detecting
//! Change in Data Streams* (VLDB 2004) — the construction the paper uses
//! for its scalability experiments (Section 6.4, Figure 5b):
//!
//! > "we first generate the reference set `R` and the test set `T` with the
//! > same size `w` from the normal distribution. Then, we replace a `p`
//! > fraction of `T` by data points sampled from a uniform distribution
//! > between `[-7, 7]`, such that `R` and `T` fail the KS test with
//! > significance level `α = 0.05`."

use crate::dist::{normal, uniform};
use crate::rng::rng_from_seed;
use moche_core::{ks_test, KsConfig};
use rand::seq::SliceRandom;

/// A reference/test pair with ground-truth contamination indices.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftPair {
    /// The reference set `R` (standard normal draws).
    pub reference: Vec<f64>,
    /// The test set `T` (normal draws with a contaminated fraction).
    pub test: Vec<f64>,
    /// Indices of `test` that were replaced by uniform draws.
    pub contaminated: Vec<usize>,
}

impl DriftPair {
    /// `|R| = |T| = w`.
    #[inline]
    pub fn size(&self) -> usize {
        self.reference.len()
    }

    /// The realized contamination fraction.
    #[inline]
    pub fn contamination(&self) -> f64 {
        self.contaminated.len() as f64 / self.test.len() as f64
    }
}

/// Generates one Kifer-style drift pair of size `w` with a `p` fraction of
/// `T` replaced by `U[-7, 7]` draws.
///
/// # Panics
///
/// Panics unless `w >= 2` and `0 <= p <= 1`.
pub fn kifer_pair(w: usize, p: f64, seed: u64) -> DriftPair {
    assert!(w >= 2, "w must be at least 2");
    assert!((0.0..=1.0).contains(&p), "p must be a fraction");
    let mut rng = rng_from_seed(seed);
    let reference: Vec<f64> = (0..w).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
    let mut test: Vec<f64> = (0..w).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
    let n_replace = ((w as f64) * p).round() as usize;
    let mut indices: Vec<usize> = (0..w).collect();
    indices.shuffle(&mut rng);
    let mut contaminated: Vec<usize> = indices.into_iter().take(n_replace).collect();
    contaminated.sort_unstable();
    for &i in &contaminated {
        test[i] = uniform(&mut rng, -7.0, 7.0);
    }
    DriftPair { reference, test, contaminated }
}

/// Generates a Kifer pair that is guaranteed to fail the KS test at the
/// given configuration, retrying with derived seeds up to `max_tries`
/// times.
///
/// Returns `None` if no failing pair was found (only plausible for tiny `w`
/// or `p ≈ 0`).
pub fn failing_kifer_pair(
    w: usize,
    p: f64,
    cfg: &KsConfig,
    seed: u64,
    max_tries: usize,
) -> Option<DriftPair> {
    for attempt in 0..max_tries {
        let pair = kifer_pair(w, p, seed.wrapping_add(attempt as u64 * 0x9E37_79B9));
        let outcome = ks_test(&pair.reference, &pair.test, cfg).expect("finite inputs");
        if outcome.rejected {
            return Some(pair);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_contamination() {
        let pair = kifer_pair(1_000, 0.03, 5);
        assert_eq!(pair.reference.len(), 1_000);
        assert_eq!(pair.test.len(), 1_000);
        assert_eq!(pair.contaminated.len(), 30);
        assert!((pair.contamination() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn contaminated_points_are_uniform_range() {
        let pair = kifer_pair(2_000, 0.05, 6);
        for &i in &pair.contaminated {
            assert!((-7.0..7.0).contains(&pair.test[i]));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(kifer_pair(500, 0.02, 9), kifer_pair(500, 0.02, 9));
        assert_ne!(kifer_pair(500, 0.02, 9), kifer_pair(500, 0.02, 10));
    }

    #[test]
    fn failing_pair_fails() {
        let cfg = KsConfig::new(0.05).unwrap();
        let pair = failing_kifer_pair(2_000, 0.05, &cfg, 1, 50).expect("should find one");
        let outcome = ks_test(&pair.reference, &pair.test, &cfg).unwrap();
        assert!(outcome.rejected);
    }

    #[test]
    fn zero_contamination_usually_passes() {
        let cfg = KsConfig::new(0.05).unwrap();
        let mut failures = 0;
        for seed in 0..20 {
            let pair = kifer_pair(500, 0.0, seed);
            if ks_test(&pair.reference, &pair.test, &cfg).unwrap().rejected {
                failures += 1;
            }
        }
        // alpha = 0.05: expect ~1 false alarm in 20; allow up to 4.
        assert!(failures <= 4, "{failures} false alarms in 20 runs");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        let _ = kifer_pair(100, 1.5, 1);
    }
}
