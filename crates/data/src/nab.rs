//! Synthetic stand-ins for the six Numenta Anomaly Benchmark (NAB) dataset
//! families used by the paper's time-series experiments (Section 6.1.1,
//! Table 1).
//!
//! The real NAB repository is not vendored; instead each family is a seeded
//! generator producing series whose count and length ranges match the
//! paper's Table 1 exactly, with injected anomalies (spikes, level shifts,
//! variance bursts, gradual drifts) recorded as ground-truth windows:
//!
//! | Family | # series | Length | Character |
//! |---|---|---|---|
//! | AWS | 17 | 1,243-4,700 | server metrics: CPU %, network bytes, disk reads |
//! | AD  | 6  | 1,538-1,624 | ad click-through rates and CPM |
//! | TRF | 7  | 1,127-2,500 | freeway occupancy / speed / travel time |
//! | TWT | 10 | 15,831-15,902 | tweet mention counts (bursty counts) |
//! | KC  | 7  | 1,882-22,695 | known causes: machine temp, taxi riders, CPU |
//! | ART | 6  | 4,032 | artificial series with distribution drifts |
//!
//! See `DESIGN.md` §5 for why this substitution preserves the experiments'
//! behaviour.

use crate::dist::{normal, poisson, uniform};
use crate::rng::{derive_seed, rng_from_seed};
use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::Range;

/// The six dataset families of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NabFamily {
    /// AWS server metrics.
    Aws,
    /// Online advertisement clicks.
    Ad,
    /// Freeway traffic.
    Trf,
    /// Tweet mention counts.
    Twt,
    /// Miscellaneous known causes.
    Kc,
    /// Artificially generated drift series.
    Art,
}

impl NabFamily {
    /// All families, in the paper's Table 1 order.
    pub const ALL: [NabFamily; 6] = [
        NabFamily::Aws,
        NabFamily::Ad,
        NabFamily::Trf,
        NabFamily::Twt,
        NabFamily::Kc,
        NabFamily::Art,
    ];

    /// The abbreviation used in the paper.
    pub fn short_name(self) -> &'static str {
        match self {
            NabFamily::Aws => "AWS",
            NabFamily::Ad => "AD",
            NabFamily::Trf => "TRF",
            NabFamily::Twt => "TWT",
            NabFamily::Kc => "KC",
            NabFamily::Art => "ART",
        }
    }

    /// Number of series in the family (Table 1).
    pub fn series_count(self) -> usize {
        match self {
            NabFamily::Aws => 17,
            NabFamily::Ad => 6,
            NabFamily::Trf => 7,
            NabFamily::Twt => 10,
            NabFamily::Kc => 7,
            NabFamily::Art => 6,
        }
    }

    /// Length range of the family's series (Table 1), inclusive.
    pub fn length_range(self) -> (usize, usize) {
        match self {
            NabFamily::Aws => (1_243, 4_700),
            NabFamily::Ad => (1_538, 1_624),
            NabFamily::Trf => (1_127, 2_500),
            NabFamily::Twt => (15_831, 15_902),
            NabFamily::Kc => (1_882, 22_695),
            NabFamily::Art => (4_032, 4_032),
        }
    }
}

/// One univariate time series with ground-truth anomaly windows.
#[derive(Debug, Clone, PartialEq)]
pub struct NabSeries {
    /// The family this series belongs to.
    pub family: NabFamily,
    /// A unique name, e.g. `aws_cpu_03`.
    pub name: String,
    /// The observations.
    pub values: Vec<f64>,
    /// Ground-truth anomaly windows (half-open index ranges).
    pub anomalies: Vec<Range<usize>>,
}

impl NabSeries {
    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty (never true for generated series).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the index range `[start, end)` overlaps a ground-truth
    /// anomaly window.
    pub fn overlaps_anomaly(&self, start: usize, end: usize) -> bool {
        self.anomalies.iter().any(|r| r.start < end && start < r.end)
    }
}

/// Generates every series of one family.
pub fn generate_family(family: NabFamily, seed: u64) -> Vec<NabSeries> {
    let count = family.series_count();
    (0..count)
        .map(|i| {
            let series_seed = derive_seed(seed, &format!("{}-{i}", family.short_name()));
            generate_series(family, i, series_seed)
        })
        .collect()
}

/// Generates all 53 series of all six families (Table 1).
pub fn generate_all(seed: u64) -> Vec<NabSeries> {
    NabFamily::ALL.iter().flat_map(|&f| generate_family(f, seed)).collect()
}

fn pick_len(rng: &mut StdRng, family: NabFamily) -> usize {
    let (lo, hi) = family.length_range();
    if lo == hi {
        lo
    } else {
        rng.random_range(lo..=hi)
    }
}

fn generate_series(family: NabFamily, index: usize, seed: u64) -> NabSeries {
    let mut rng = rng_from_seed(seed);
    let len = pick_len(&mut rng, family);
    let (kind, mut values) = match family {
        NabFamily::Aws => aws_base(&mut rng, index, len),
        NabFamily::Ad => ad_base(&mut rng, index, len),
        NabFamily::Trf => trf_base(&mut rng, index, len),
        NabFamily::Twt => twt_base(&mut rng, index, len),
        NabFamily::Kc => kc_base(&mut rng, index, len),
        NabFamily::Art => art_base(&mut rng, index, len),
    };
    let mut anomalies = Vec::new();
    inject_anomalies(&mut rng, family, &mut values, &mut anomalies);
    NabSeries {
        family,
        name: format!("{}_{kind}_{index:02}", family.short_name().to_lowercase()),
        values,
        anomalies,
    }
}

// ---------------------------------------------------------------------------
// Base signals
// ---------------------------------------------------------------------------

/// AWS server metrics: daily periodicity on a noisy base level. Three
/// metric shapes rotate across the 17 series.
fn aws_base(rng: &mut StdRng, index: usize, len: usize) -> (&'static str, Vec<f64>) {
    match index % 3 {
        0 => {
            // CPU utilization percentage.
            let base = uniform(rng, 20.0, 50.0);
            let amp = uniform(rng, 5.0, 15.0);
            let series = (0..len)
                .map(|t| {
                    let day = (t as f64 / 288.0 * std::f64::consts::TAU).sin();
                    (base + amp * day + normal(rng, 0.0, 2.0)).clamp(0.0, 100.0)
                })
                .collect();
            ("cpu", series)
        }
        1 => {
            // Network bytes in: heavier tail, multiplicative noise.
            let base = uniform(rng, 1.0e4, 5.0e4);
            let series = (0..len)
                .map(|t| {
                    let day = 1.0 + 0.4 * (t as f64 / 288.0 * std::f64::consts::TAU).sin();
                    (base * day * (1.0 + normal(rng, 0.0, 0.15)).max(0.05)).max(0.0)
                })
                .collect();
            ("network", series)
        }
        _ => {
            // Disk read bytes: mostly quiet with periodic batch jobs.
            let quiet = uniform(rng, 100.0, 500.0);
            let batch = uniform(rng, 3_000.0, 8_000.0);
            let period = rng.random_range(180..360usize);
            let series = (0..len)
                .map(|t| {
                    let busy = t % period < 12;
                    let level = if busy { batch } else { quiet };
                    (level + normal(rng, 0.0, level * 0.1)).max(0.0)
                })
                .collect();
            ("disk", series)
        }
    }
}

/// Online advertisement metrics: slowly drifting rates with weekly shape.
fn ad_base(rng: &mut StdRng, index: usize, len: usize) -> (&'static str, Vec<f64>) {
    if index.is_multiple_of(2) {
        // Click-through rate in [0, 1].
        let base = uniform(rng, 0.02, 0.08);
        let series = (0..len)
            .map(|t| {
                let week = 1.0 + 0.3 * (t as f64 / 168.0 * std::f64::consts::TAU).sin();
                (base * week + normal(rng, 0.0, 0.004)).max(0.0)
            })
            .collect();
        ("ctr", series)
    } else {
        // Cost per thousand impressions.
        let base = uniform(rng, 1.0, 4.0);
        let series = (0..len)
            .map(|t| {
                let week = 1.0 + 0.2 * (t as f64 / 168.0 * std::f64::consts::TAU).cos();
                (base * week + normal(rng, 0.0, 0.15)).max(0.0)
            })
            .collect();
        ("cpm", series)
    }
}

/// Freeway traffic: rush-hour double peaks.
fn trf_base(rng: &mut StdRng, index: usize, len: usize) -> (&'static str, Vec<f64>) {
    let (kind, base, amp, noise) = match index % 3 {
        0 => ("occupancy", 12.0, 18.0, 2.0),
        1 => ("speed", 100.0, -30.0, 4.0),
        _ => ("traveltime", 12.0, 9.0, 1.0),
    };
    let day = 288.0; // 5-minute readings
    let series = (0..len)
        .map(|t| {
            let phase = (t as f64 % day) / day;
            // Two rush-hour bumps at ~8:00 and ~17:00.
            let bump = |c: f64| (-((phase - c) * 12.0).powi(2)).exp();
            let rush = bump(0.33) + bump(0.71);
            (base + amp * rush + normal(rng, 0.0, noise)).max(0.0)
        })
        .collect();
    (kind, series)
}

/// Tweet mention counts: bursty Poisson counts with daily cycle.
fn twt_base(rng: &mut StdRng, _index: usize, len: usize) -> (&'static str, Vec<f64>) {
    let base = uniform(rng, 3.0, 20.0);
    let series = (0..len)
        .map(|t| {
            let day = 1.0 + 0.5 * (t as f64 / 288.0 * std::f64::consts::TAU).sin();
            poisson(rng, base * day) as f64
        })
        .collect();
    ("mentions", series)
}

/// Known causes: machine temperature, NYC taxi passengers, or CPU usage.
fn kc_base(rng: &mut StdRng, index: usize, len: usize) -> (&'static str, Vec<f64>) {
    match index % 3 {
        0 => {
            // Machine temperature: slow wander around an operating point.
            let mut level = uniform(rng, 80.0, 100.0);
            let series = (0..len)
                .map(|_| {
                    level += normal(rng, 0.0, 0.05);
                    level + normal(rng, 0.0, 0.8)
                })
                .collect();
            ("machinetemp", series)
        }
        1 => {
            // Taxi passenger counts: strong daily + weekly cycle.
            let base = uniform(rng, 10_000.0, 16_000.0);
            let series = (0..len)
                .map(|t| {
                    let daily = 1.0 + 0.6 * (t as f64 / 48.0 * std::f64::consts::TAU).sin();
                    let weekly = 1.0 + 0.15 * (t as f64 / 336.0 * std::f64::consts::TAU).cos();
                    (base * daily * weekly / 2.0 + normal(rng, 0.0, 400.0)).max(0.0)
                })
                .collect();
            ("taxi", series)
        }
        _ => {
            // CPU usage with occasional regime changes built into the base.
            let mut level = uniform(rng, 30.0, 60.0);
            let mut until = 0usize;
            let series = (0..len)
                .map(|t| {
                    if t >= until {
                        level = uniform(rng, 25.0, 70.0);
                        until = t + rng.random_range(400..900usize);
                    }
                    (level + normal(rng, 0.0, 3.0)).clamp(0.0, 100.0)
                })
                .collect();
            ("cpu", series)
        }
    }
}

/// Artificial drift series after Kifer et al.: piecewise distribution
/// segments whose parameters change at drift points.
fn art_base(rng: &mut StdRng, index: usize, len: usize) -> (&'static str, Vec<f64>) {
    let segments = 4 + index % 3;
    let seg_len = len / segments;
    let mut series = Vec::with_capacity(len);
    let mut mu = 0.0f64;
    let mut sigma = 1.0f64;
    for s in 0..segments {
        // Each segment drifts in mean, variance, or family.
        match s % 3 {
            0 => mu += uniform(rng, -1.5, 1.5),
            1 => sigma = uniform(rng, 0.5, 2.5),
            _ => {}
        }
        let uniform_segment = s % 3 == 2;
        let remaining = len - series.len();
        let take = if s == segments - 1 { remaining } else { seg_len.min(remaining) };
        for _ in 0..take {
            let v = if uniform_segment {
                uniform(rng, mu - 3.0 * sigma, mu + 3.0 * sigma)
            } else {
                normal(rng, mu, sigma)
            };
            series.push(v);
        }
    }
    ("drift", series)
}

// ---------------------------------------------------------------------------
// Anomaly injection
// ---------------------------------------------------------------------------

fn inject_anomalies(
    rng: &mut StdRng,
    family: NabFamily,
    values: &mut [f64],
    anomalies: &mut Vec<Range<usize>>,
) {
    let len = values.len();
    let count = 2 + rng.random_range(0..3usize);
    let scale = robust_scale(values);
    for _ in 0..count {
        let kind = rng.random_range(0..4usize);
        let width = match kind {
            0 => 1 + rng.random_range(0..3usize),      // spike
            1 => rng.random_range(len / 40..len / 12), // level shift
            2 => rng.random_range(len / 40..len / 12), // variance burst
            _ => rng.random_range(len / 20..len / 8),  // gradual drift
        }
        .max(1);
        if width + 10 >= len {
            continue;
        }
        let start = rng.random_range(5..len - width - 5);
        let range = start..start + width;
        if anomalies.iter().any(|r| r.start < range.end + 20 && range.start < r.end + 20) {
            continue; // keep windows separated
        }
        match kind {
            0 => {
                let sign = if matches!(family, NabFamily::Twt) || rng.random::<bool>() {
                    1.0
                } else {
                    -1.0
                };
                for v in &mut values[range.clone()] {
                    *v += sign * scale * uniform(rng, 6.0, 12.0);
                }
            }
            1 => {
                let delta = scale * uniform(rng, 3.0, 6.0) * if rng.random() { 1.0 } else { -1.0 };
                for v in &mut values[range.clone()] {
                    *v += delta;
                }
            }
            2 => {
                for v in &mut values[range.clone()] {
                    *v += normal(rng, 0.0, scale * 4.0);
                }
            }
            _ => {
                let slope = scale * uniform(rng, 2.0, 5.0) / width as f64;
                for (i, v) in values[range.clone()].iter_mut().enumerate() {
                    *v += slope * i as f64;
                }
            }
        }
        anomalies.push(range);
    }
    anomalies.sort_by_key(|r| r.start);
}

/// A robust scale estimate (IQR-based, falling back to |median| or 1.0) so
/// injected anomalies are visible regardless of the base signal's units.
fn robust_scale(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
    let iqr = q(0.75) - q(0.25);
    if iqr > 1e-9 {
        iqr
    } else {
        let med = q(0.5).abs();
        if med > 1e-9 {
            med * 0.1
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_and_lengths() {
        for family in NabFamily::ALL {
            let series = generate_family(family, 42);
            assert_eq!(series.len(), family.series_count(), "{family:?}");
            let (lo, hi) = family.length_range();
            for s in &series {
                assert!(
                    (lo..=hi).contains(&s.len()),
                    "{} has length {} outside [{lo}, {hi}]",
                    s.name,
                    s.len()
                );
            }
        }
    }

    #[test]
    fn all_families_total_53_series() {
        let all = generate_all(7);
        assert_eq!(all.len(), 53);
        // Names are unique.
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 53);
    }

    #[test]
    fn values_are_finite() {
        for s in generate_all(1) {
            assert!(s.values.iter().all(|v| v.is_finite()), "{} has non-finite values", s.name);
        }
    }

    #[test]
    fn every_series_has_ground_truth() {
        for s in generate_all(3) {
            assert!(!s.anomalies.is_empty(), "{} has no anomaly windows", s.name);
            for r in &s.anomalies {
                assert!(r.start < r.end && r.end <= s.len());
            }
        }
    }

    #[test]
    fn anomaly_windows_are_sorted_and_disjoint() {
        for s in generate_all(5) {
            for w in s.anomalies.windows(2) {
                assert!(w[0].end <= w[1].start, "{}: overlapping windows", s.name);
            }
        }
    }

    #[test]
    fn overlaps_anomaly_detects_intersections() {
        let s = NabSeries {
            family: NabFamily::Art,
            name: "t".into(),
            values: vec![0.0; 100],
            anomalies: vec![10..20, 50..60],
        };
        assert!(s.overlaps_anomaly(15, 25));
        assert!(s.overlaps_anomaly(5, 11));
        assert!(!s.overlaps_anomaly(20, 50));
        assert!(s.overlaps_anomaly(0, 100));
        assert!(!s.overlaps_anomaly(60, 70));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_family(NabFamily::Aws, 11);
        let b = generate_family(NabFamily::Aws, 11);
        assert_eq!(a, b);
        let c = generate_family(NabFamily::Aws, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn spikes_are_visible_above_noise() {
        // At least one anomaly window should contain a point far from the
        // series median.
        for s in generate_family(NabFamily::Aws, 21) {
            let scale = robust_scale(&s.values);
            let mut sorted = s.values.clone();
            sorted.sort_unstable_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            let visible = s
                .anomalies
                .iter()
                .any(|r| s.values[r.clone()].iter().any(|&v| (v - median).abs() > 2.0 * scale));
            assert!(visible, "{} anomalies indistinguishable from noise", s.name);
        }
    }

    #[test]
    fn art_series_have_exact_length() {
        for s in generate_family(NabFamily::Art, 9) {
            assert_eq!(s.len(), 4_032);
        }
    }

    #[test]
    fn twt_series_are_counts() {
        for s in generate_family(NabFamily::Twt, 2) {
            // Most points are non-negative integers (anomaly windows may
            // push them off-grid, but the base signal is counts).
            let integral =
                s.values.iter().filter(|v| (*v - v.round()).abs() < 1e-9 && **v >= 0.0).count();
            assert!(integral * 10 >= s.len() * 7, "{}", s.name);
        }
    }
}
