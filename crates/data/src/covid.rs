//! A synthetic reconstruction of the paper's COVID-19 case study data
//! (Examples 1-2 and Section 6.3).
//!
//! The original data — BC CDC line lists of reported cases for August and
//! September 2020 — is not redistributable, so this module generates a
//! seeded synthetic twin calibrated to everything the paper reports about
//! it:
//!
//! * 2,175 reference cases (August) and 3,375 test cases (September);
//! * 10 age groups encoded 1..=10 from young to old;
//! * 5 health authorities (HAs) in the population-descending axis order of
//!   the paper's Figure 1b: FHA, VCHA, NHA, IHA, VIHA;
//! * the two sets fail the KS test at `α = 0.05`;
//! * September's excess cases are concentrated in middle/senior age groups
//!   and in Fraser Health (the paper's case-study finding), so that the
//!   population-preference explanation `I_p` comes from FHA and the
//!   age-preference explanation `I_a` skews old;
//! * MOCHE's explanation size lands close to the paper's 291 (≈ 8.6% of
//!   `|T|`).
//!
//! See `DESIGN.md` §5 for the substitution rationale.

use crate::dist::categorical;
use crate::rng::rng_from_seed;
use moche_core::PreferenceList;
use rand::seq::SliceRandom;

/// Number of age groups (0-10, 10-19, ..., 80-89, 90+).
pub const AGE_GROUPS: usize = 10;

/// Human-readable age group labels, indexed by `age_group - 1`.
pub const AGE_LABELS: [&str; AGE_GROUPS] =
    ["0-10", "10-19", "20-29", "30-39", "40-49", "50-59", "60-69", "70-79", "80-89", "90+"];

/// The five health authorities of British Columbia, in the paper's
/// Figure 1b axis order (population descending).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthAuthority {
    /// Fraser Health Authority.
    Fraser,
    /// Vancouver Coastal Health Authority.
    VancouverCoastal,
    /// Northern Health Authority.
    Northern,
    /// Interior Health Authority.
    Interior,
    /// Vancouver Island Health Authority.
    VancouverIsland,
}

impl HealthAuthority {
    /// All HAs in population-descending order (the paper's axis order).
    pub const ALL: [HealthAuthority; 5] = [
        HealthAuthority::Fraser,
        HealthAuthority::VancouverCoastal,
        HealthAuthority::Northern,
        HealthAuthority::Interior,
        HealthAuthority::VancouverIsland,
    ];

    /// Synthetic population, descending in the paper's axis order. (The
    /// real 2016-census numbers order differently; the paper's Figure 1b
    /// axis is taken as ground truth for the reproduction.)
    pub fn population(self) -> u64 {
        match self {
            HealthAuthority::Fraser => 1_889_225,
            HealthAuthority::VancouverCoastal => 1_198_165,
            HealthAuthority::Northern => 860_000,
            HealthAuthority::Interior => 810_000,
            HealthAuthority::VancouverIsland => 765_000,
        }
    }

    /// The abbreviation used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            HealthAuthority::Fraser => "FHA",
            HealthAuthority::VancouverCoastal => "VCHA",
            HealthAuthority::Northern => "NHA",
            HealthAuthority::Interior => "IHA",
            HealthAuthority::VancouverIsland => "VIHA",
        }
    }

    /// Index into [`HealthAuthority::ALL`].
    pub fn index(self) -> usize {
        HealthAuthority::ALL.iter().position(|&h| h == self).unwrap()
    }
}

/// One reported COVID-19 case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CovidCase {
    /// Age group code `1..=10`, young to old.
    pub age_group: u8,
    /// Reporting health authority.
    pub health_authority: HealthAuthority,
}

impl CovidCase {
    /// The numeric value the KS test runs on (the age-group code).
    #[inline]
    pub fn value(&self) -> f64 {
        f64::from(self.age_group)
    }
}

/// Generation parameters; [`CovidParams::paper`] reproduces the paper's
/// setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CovidParams {
    /// `|R|` — August cases.
    pub reference_size: usize,
    /// `|T|` — September cases.
    pub test_size: usize,
    /// Fraction of the test set that is "excess" (the September surge).
    pub excess_fraction: f64,
    /// Age-group weights of the baseline (August-shaped) cases.
    pub baseline_weights: [f64; AGE_GROUPS],
    /// Age-group weights of the excess cases (middle/senior-skewed).
    pub excess_weights: [f64; AGE_GROUPS],
}

impl CovidParams {
    /// The calibrated paper setting: 2,175 / 3,375 cases, younger-skewed
    /// August distribution, middle/senior-skewed September surge
    /// concentrated in Fraser Health.
    pub fn paper() -> Self {
        Self {
            reference_size: 2_175,
            test_size: 3_375,
            excess_fraction: 0.205,
            baseline_weights: [0.05, 0.17, 0.23, 0.15, 0.12, 0.11, 0.08, 0.05, 0.03, 0.01],
            excess_weights: [0.00, 0.02, 0.08, 0.15, 0.20, 0.22, 0.18, 0.10, 0.04, 0.01],
        }
    }
}

/// The synthetic COVID-19 dataset: reference (August) and test (September)
/// case lists.
#[derive(Debug, Clone, PartialEq)]
pub struct CovidDataset {
    /// August cases.
    pub reference: Vec<CovidCase>,
    /// September cases.
    pub test: Vec<CovidCase>,
}

impl CovidDataset {
    /// Generates the paper-calibrated dataset.
    pub fn generate(seed: u64) -> Self {
        Self::with_params(CovidParams::paper(), seed)
    }

    /// Generates a dataset with explicit parameters.
    ///
    /// Counts per age group are apportioned deterministically (largest
    /// remainder), so the KS outcome and the explanation size depend only
    /// on the parameters; the seed randomizes case order and HA assignment
    /// of baseline cases.
    pub fn with_params(params: CovidParams, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let ha_weights: Vec<f64> =
            HealthAuthority::ALL.iter().map(|h| h.population() as f64).collect();

        // Reference: baseline-shaped, HA by population share.
        let ref_counts = apportion(&params.baseline_weights, params.reference_size);
        let mut reference = Vec::with_capacity(params.reference_size);
        for (g, &count) in ref_counts.iter().enumerate() {
            for _ in 0..count {
                let ha = HealthAuthority::ALL[categorical(&mut rng, &ha_weights)];
                reference.push(CovidCase { age_group: (g + 1) as u8, health_authority: ha });
            }
        }

        // Test: baseline part + excess part (all Fraser Health).
        let excess_total = ((params.test_size as f64) * params.excess_fraction).round() as usize;
        let baseline_total = params.test_size - excess_total;
        let baseline_counts = apportion(&params.baseline_weights, baseline_total);
        let excess_counts = apportion(&params.excess_weights, excess_total);
        let mut test = Vec::with_capacity(params.test_size);
        for (g, &count) in baseline_counts.iter().enumerate() {
            for _ in 0..count {
                let ha = HealthAuthority::ALL[categorical(&mut rng, &ha_weights)];
                test.push(CovidCase { age_group: (g + 1) as u8, health_authority: ha });
            }
        }
        for (g, &count) in excess_counts.iter().enumerate() {
            for _ in 0..count {
                test.push(CovidCase {
                    age_group: (g + 1) as u8,
                    health_authority: HealthAuthority::Fraser,
                });
            }
        }

        reference.shuffle(&mut rng);
        test.shuffle(&mut rng);
        Self { reference, test }
    }

    /// Reference case values (age-group codes) for the KS test.
    pub fn reference_values(&self) -> Vec<f64> {
        self.reference.iter().map(CovidCase::value).collect()
    }

    /// Test case values (age-group codes) for the KS test.
    pub fn test_values(&self) -> Vec<f64> {
        self.test.iter().map(CovidCase::value).collect()
    }

    /// The preference list `L_p`: cases from HAs with larger populations
    /// ranked higher, ties in arbitrary (index) order.
    pub fn preference_by_population(&self) -> PreferenceList {
        let scores: Vec<f64> =
            self.test.iter().map(|c| c.health_authority.population() as f64).collect();
        PreferenceList::from_scores_desc(&scores).expect("population scores are finite")
    }

    /// The preference list `L_a`: more senior cases ranked higher, ties in
    /// arbitrary (index) order.
    pub fn preference_by_age(&self) -> PreferenceList {
        let scores: Vec<f64> = self.test.iter().map(|c| f64::from(c.age_group)).collect();
        PreferenceList::from_scores_desc(&scores).expect("age scores are finite")
    }

    /// Histogram of cases per age group (index 0 = group 1).
    pub fn age_histogram(cases: &[CovidCase]) -> [usize; AGE_GROUPS] {
        let mut hist = [0usize; AGE_GROUPS];
        for c in cases {
            hist[(c.age_group - 1) as usize] += 1;
        }
        hist
    }

    /// Histogram of cases per health authority, in
    /// [`HealthAuthority::ALL`] order.
    pub fn ha_histogram(cases: &[CovidCase]) -> [usize; 5] {
        let mut hist = [0usize; 5];
        for c in cases {
            hist[c.health_authority.index()] += 1;
        }
        hist
    }
}

/// Largest-remainder apportionment of `total` items across weights.
fn apportion(weights: &[f64], total: usize) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    let quotas: Vec<f64> = weights.iter().map(|&w| w / sum * total as f64).collect();
    let mut counts: Vec<usize> = quotas.iter().map(|&q| q.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = quotas[a] - quotas[a].floor();
        let fb = quotas[b] - quotas[b].floor();
        fb.total_cmp(&fa)
    });
    for &i in order.iter().take(total - assigned) {
        counts[i] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use moche_core::{ks_test, KsConfig, Moche};

    #[test]
    fn apportion_sums_to_total() {
        let counts = apportion(&[0.3, 0.3, 0.4], 10);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        let counts = apportion(&[1.0, 1.0, 1.0], 100);
        assert_eq!(counts, vec![34, 33, 33]);
    }

    #[test]
    fn paper_sizes() {
        let ds = CovidDataset::generate(1);
        assert_eq!(ds.reference.len(), 2_175);
        assert_eq!(ds.test.len(), 3_375);
    }

    #[test]
    fn fails_ks_at_005() {
        let ds = CovidDataset::generate(1);
        let cfg = KsConfig::new(0.05).unwrap();
        let o = ks_test(&ds.reference_values(), &ds.test_values(), &cfg).unwrap();
        assert!(o.rejected, "synthetic COVID data must fail the KS test: {o:?}");
    }

    #[test]
    fn explanation_size_near_paper() {
        let ds = CovidDataset::generate(1);
        let moche = Moche::new(0.05).unwrap();
        let s = moche.explanation_size(&ds.reference_values(), &ds.test_values()).unwrap();
        // Paper: 291 points (8.6% of |T|). The synthetic twin should land in
        // the same ballpark.
        assert!(
            (200..=400).contains(&s.k),
            "explanation size {} too far from the paper's 291",
            s.k
        );
    }

    #[test]
    fn population_preference_explanation_is_fraser_heavy() {
        let ds = CovidDataset::generate(1);
        let moche = Moche::new(0.05).unwrap();
        let e = moche
            .explain(&ds.reference_values(), &ds.test_values(), &ds.preference_by_population())
            .unwrap();
        let cases: Vec<CovidCase> = e.indices().iter().map(|&i| ds.test[i]).collect();
        let hist = CovidDataset::ha_histogram(&cases);
        let fraser = hist[0];
        assert!(
            fraser * 10 >= e.size() * 9,
            "I_p should be dominated by FHA, got {hist:?} of {}",
            e.size()
        );
    }

    #[test]
    fn age_preference_explanation_skews_senior() {
        let ds = CovidDataset::generate(1);
        let moche = Moche::new(0.05).unwrap();
        let e_a = moche
            .explain(&ds.reference_values(), &ds.test_values(), &ds.preference_by_age())
            .unwrap();
        let e_p = moche
            .explain(&ds.reference_values(), &ds.test_values(), &ds.preference_by_population())
            .unwrap();
        // Same size (all explanations share k).
        assert_eq!(e_a.size(), e_p.size());
        let mean_age =
            |e: &moche_core::Explanation| e.values().iter().sum::<f64>() / e.size() as f64;
        assert!(
            mean_age(&e_a) >= mean_age(&e_p),
            "age-preferred explanation should be at least as senior"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = CovidDataset::generate(9);
        let b = CovidDataset::generate(9);
        assert_eq!(a, b);
        let c = CovidDataset::generate(10);
        assert_ne!(a, c);
        // Different seeds still share the same age histograms (counts are
        // apportioned, not sampled).
        assert_eq!(CovidDataset::age_histogram(&a.test), CovidDataset::age_histogram(&c.test));
    }

    #[test]
    fn histograms_count_everything() {
        let ds = CovidDataset::generate(3);
        assert_eq!(CovidDataset::age_histogram(&ds.test).iter().sum::<usize>(), 3_375);
        assert_eq!(CovidDataset::ha_histogram(&ds.reference).iter().sum::<usize>(), 2_175);
    }

    #[test]
    fn ha_metadata_is_consistent() {
        // Populations strictly descending in axis order; short names unique.
        let pops: Vec<u64> = HealthAuthority::ALL.iter().map(|h| h.population()).collect();
        assert!(pops.windows(2).all(|w| w[0] > w[1]), "{pops:?}");
        for (i, h) in HealthAuthority::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
    }

    #[test]
    fn age_groups_in_range() {
        let ds = CovidDataset::generate(4);
        for c in ds.reference.iter().chain(&ds.test) {
            assert!((1..=10).contains(&c.age_group));
        }
    }
}
