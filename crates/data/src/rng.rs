//! Seeded RNG construction helpers.
//!
//! Every generator in this crate takes an explicit `u64` seed and derives
//! its randomness from a [`rand::rngs::StdRng`], so all datasets — and
//! therefore all experiment tables — are exactly reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed for a named sub-stream, so independent generators
/// seeded from one master seed do not share their streams.
pub fn derive_seed(master: u64, stream: &str) -> u64 {
    // FNV-1a over the stream name, mixed with the master seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ master;
    for b in stream.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..10).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert!(same < 10);
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(7, "covid");
        let b = derive_seed(7, "nab");
        let c = derive_seed(8, "covid");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(7, "covid"));
    }
}
