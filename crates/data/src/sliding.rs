//! The sliding-window KS harness of the paper's time-series experiments
//! (Section 6.1.1):
//!
//! > "We run a sliding window `W` of size `w` to obtain the reference set,
//! > and use the window of the same size following `W` immediately without
//! > any overlap as the test set. [...] The KS test is conducted multiple
//! > times as the sliding windows run through a time series. A failed KS
//! > test indicates that the time series has a distribution drift."

use crate::nab::NabSeries;
use crate::rng::rng_from_seed;
use moche_core::{ks_test, KsConfig};
use rand::seq::SliceRandom;

/// One failed KS test extracted from a series: the reference window, the
/// test window, and provenance metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedTest {
    /// Name of the originating series.
    pub series_name: String,
    /// Window size `w` (`|R| = |T| = w`).
    pub window: usize,
    /// Index of the first reference observation in the series.
    pub reference_start: usize,
    /// Index of the first test observation in the series
    /// (`reference_start + window`).
    pub test_start: usize,
    /// The reference set.
    pub reference: Vec<f64>,
    /// The test set.
    pub test: Vec<f64>,
    /// Whether the test window overlaps a ground-truth anomaly.
    pub overlaps_anomaly: bool,
    /// The KS statistic of the failed test.
    pub statistic: f64,
}

/// Slides paired windows through `series` and returns every position where
/// the KS test fails. `stride` controls how far the window advances per
/// step (the paper's non-overlapping convention corresponds to
/// `stride = window`).
///
/// # Panics
///
/// Panics if `window == 0` or `stride == 0`.
pub fn failed_windows(
    series: &NabSeries,
    window: usize,
    cfg: &KsConfig,
    stride: usize,
) -> Vec<FailedTest> {
    assert!(window > 0, "window must be positive");
    assert!(stride > 0, "stride must be positive");
    let n = series.values.len();
    let mut out = Vec::new();
    if n < 2 * window {
        return out;
    }
    let mut start = 0usize;
    while start + 2 * window <= n {
        let reference = &series.values[start..start + window];
        let test = &series.values[start + window..start + 2 * window];
        let outcome = ks_test(reference, test, cfg).expect("generated data is finite");
        if outcome.rejected {
            out.push(FailedTest {
                series_name: series.name.clone(),
                window,
                reference_start: start,
                test_start: start + window,
                reference: reference.to_vec(),
                test: test.to_vec(),
                overlaps_anomaly: series.overlaps_anomaly(start + window, start + 2 * window),
                statistic: outcome.statistic,
            });
        }
        start += stride;
    }
    out
}

/// Samples up to `count` failed tests uniformly (seeded), following the
/// paper's protocol of preferring tests whose test window contains
/// ground-truth anomalies. If fewer anomalous tests exist than requested,
/// the remainder is drawn from the rest.
pub fn sample_failed(mut failed: Vec<FailedTest>, count: usize, seed: u64) -> Vec<FailedTest> {
    let mut rng = rng_from_seed(seed);
    failed.shuffle(&mut rng);
    let (mut anomalous, clean): (Vec<_>, Vec<_>) =
        failed.into_iter().partition(|f| f.overlaps_anomaly);
    if anomalous.len() >= count {
        anomalous.truncate(count);
        return anomalous;
    }
    let need = count - anomalous.len();
    anomalous.extend(clean.into_iter().take(need));
    anomalous
}

/// Convenience: extracts and samples failed tests for every window size of
/// the paper's sweep that fits the series (`window <= len / 2`), mirroring
/// the "10 failed KS tests per combination of time series and window size"
/// sampling of Section 6.1.3.
pub fn paper_failed_tests(
    series: &NabSeries,
    window_sizes: &[usize],
    cfg: &KsConfig,
    per_combination: usize,
    seed: u64,
) -> Vec<FailedTest> {
    let mut out = Vec::new();
    for (i, &w) in window_sizes.iter().enumerate() {
        if series.values.len() < 2 * w {
            continue;
        }
        // Slide with stride w/2 to surface more candidate positions than
        // the strictly non-overlapping walk, then sample.
        let stride = (w / 2).max(1);
        let failed = failed_windows(series, w, cfg, stride);
        out.extend(sample_failed(failed, per_combination, seed.wrapping_add(i as u64)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nab::NabFamily;

    fn series_with_shift() -> NabSeries {
        // First 300 points ~ level 0, next 300 ~ level 10: a guaranteed
        // drift at index 300.
        let mut values = vec![0.0f64; 300];
        values.extend(vec![10.0f64; 300]);
        // Tiny deterministic jitter so values are not all identical.
        for (i, v) in values.iter_mut().enumerate() {
            *v += (i % 7) as f64 * 0.01;
        }
        NabSeries {
            family: NabFamily::Art,
            name: "shift".into(),
            values,
            #[allow(clippy::single_range_in_vec_init)] // one anomalous index range
            anomalies: vec![300..320],
        }
    }

    #[test]
    fn detects_the_drift() {
        let cfg = KsConfig::new(0.05).unwrap();
        let failed = failed_windows(&series_with_shift(), 100, &cfg, 50);
        assert!(!failed.is_empty());
        // Some failed window must straddle the shift point.
        assert!(failed.iter().any(|f| f.reference_start < 300 && f.test_start + f.window > 300));
    }

    #[test]
    fn no_failures_on_stationary_series() {
        let cfg = KsConfig::new(0.05).unwrap();
        let series = NabSeries {
            family: NabFamily::Art,
            name: "flat".into(),
            values: (0..600).map(|i| ((i * 31) % 97) as f64).collect(),
            anomalies: vec![],
        };
        let failed = failed_windows(&series, 100, &cfg, 100);
        assert!(failed.is_empty(), "stationary series should pass everywhere");
    }

    #[test]
    fn window_metadata_is_consistent() {
        let cfg = KsConfig::new(0.05).unwrap();
        for f in failed_windows(&series_with_shift(), 100, &cfg, 25) {
            assert_eq!(f.test_start, f.reference_start + f.window);
            assert_eq!(f.reference.len(), f.window);
            assert_eq!(f.test.len(), f.window);
            assert!(f.statistic > 0.0);
        }
    }

    #[test]
    fn overlaps_anomaly_flag() {
        let cfg = KsConfig::new(0.05).unwrap();
        let failed = failed_windows(&series_with_shift(), 150, &cfg, 10);
        let anomalous = failed.iter().filter(|f| f.overlaps_anomaly).count();
        assert!(anomalous > 0, "tests covering index 300..320 must be flagged");
    }

    #[test]
    fn sampling_prefers_anomalous_and_caps_count() {
        let cfg = KsConfig::new(0.05).unwrap();
        let failed = failed_windows(&series_with_shift(), 100, &cfg, 10);
        let total = failed.len();
        let sampled = sample_failed(failed.clone(), 3, 1);
        assert_eq!(sampled.len(), 3.min(total));
        if failed.iter().filter(|f| f.overlaps_anomaly).count() >= 3 {
            assert!(sampled.iter().all(|f| f.overlaps_anomaly));
        }
        // Sampling more than available returns everything.
        let all = sample_failed(failed.clone(), total + 10, 1);
        assert_eq!(all.len(), total);
    }

    #[test]
    fn sampling_is_deterministic() {
        let cfg = KsConfig::new(0.05).unwrap();
        let failed = failed_windows(&series_with_shift(), 100, &cfg, 10);
        let a = sample_failed(failed.clone(), 5, 7);
        let b = sample_failed(failed, 5, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn paper_harness_skips_oversized_windows() {
        let cfg = KsConfig::new(0.05).unwrap();
        let tests = paper_failed_tests(&series_with_shift(), &[100, 10_000], &cfg, 5, 3);
        assert!(tests.iter().all(|t| t.window == 100));
    }

    #[test]
    fn short_series_yield_nothing() {
        let cfg = KsConfig::new(0.05).unwrap();
        let series = NabSeries {
            family: NabFamily::Art,
            name: "short".into(),
            values: vec![1.0; 50],
            anomalies: vec![],
        };
        assert!(failed_windows(&series, 100, &cfg, 10).is_empty());
    }
}
