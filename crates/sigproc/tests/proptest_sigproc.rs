//! Property-based tests of the signal-processing substrates against naive
//! reference implementations and mathematical identities.

use moche_sigproc::complex::Complex;
use moche_sigproc::fft::{fft_in_place, ifft_in_place, next_pow2};
use moche_sigproc::kde::{Epmf, GaussianKde};
use moche_sigproc::matrix_profile::{ab_join, ab_join_naive};
use moche_sigproc::spectral_residual::SpectralResidual;
use moche_sigproc::stats::{
    mean, moving_average, quantile, rolling_mean_std, std_dev, trailing_average, z_normalize,
    BoxPlotStats,
};
use proptest::prelude::*;

fn finite_signal(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1000.0f64..1000.0, min_len..max_len)
}

/// Values on a 0.5-spaced grid: windows are either exactly constant or have
/// a clearly non-zero spread, keeping the degenerate-window *convention*
/// exercised without sitting on the floating-point constancy-threshold
/// knife edge (where the fast recurrence and the naive two-pass can
/// legitimately classify a sd of ~1e-10 differently).
fn grid_signal(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((-2000i32..2000).prop_map(|v| f64::from(v) * 0.5), min_len..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fft_roundtrip_recovers_signal(xs in finite_signal(1, 120)) {
        let n = next_pow2(xs.len());
        let mut buf: Vec<Complex> = xs.iter().map(|&v| Complex::real(v)).collect();
        buf.resize(n, Complex::ZERO);
        fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        for (i, &x) in xs.iter().enumerate() {
            prop_assert!((buf[i].re - x).abs() < 1e-6 * (1.0 + x.abs()), "index {}", i);
            prop_assert!(buf[i].im.abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn fft_is_linear(xs in finite_signal(8, 40), ys in finite_signal(8, 40), a in -5.0f64..5.0) {
        let n = next_pow2(xs.len().max(ys.len()));
        let mk = |v: &[f64]| {
            let mut b: Vec<Complex> = v.iter().map(|&x| Complex::real(x)).collect();
            b.resize(n, Complex::ZERO);
            fft_in_place(&mut b);
            b
        };
        let fx = mk(&xs);
        let fy = mk(&ys);
        // combined = a*x + y
        let mut comb = vec![0.0f64; n];
        for (i, c) in comb.iter_mut().enumerate() {
            *c = a * xs.get(i).copied().unwrap_or(0.0) + ys.get(i).copied().unwrap_or(0.0);
        }
        let fc = mk(&comb);
        for i in 0..n {
            let expect = fx[i].scale(a) + fy[i];
            prop_assert!((fc[i].re - expect.re).abs() < 1e-6 * (1.0 + expect.re.abs()));
            prop_assert!((fc[i].im - expect.im).abs() < 1e-6 * (1.0 + expect.im.abs()));
        }
    }

    #[test]
    fn matrix_profile_matches_naive(
        q in grid_signal(10, 40),
        r in grid_signal(10, 40),
        w in 2usize..8,
    ) {
        prop_assume!(w <= q.len() && w <= r.len());
        let fast = ab_join(&q, &r, w);
        let slow = ab_join_naive(&q, &r, w);
        for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
            // sqrt amplifies rounding near zero: d = sqrt(2w(1 - corr))
            // turns a 1e-10 correlation error into a ~1e-4 distance error.
            prop_assert!((a - b).abs() < 1e-4 + 1e-6 * b, "index {}: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn matrix_profile_is_nonnegative_and_bounded(
        q in finite_signal(12, 40),
        r in finite_signal(12, 40),
    ) {
        let w = 5;
        prop_assume!(w <= q.len() && w <= r.len());
        // Two z-normalized vectors are at most 2*sqrt(w) apart (perfect
        // anti-correlation).
        let bound = 2.0 * (w as f64).sqrt() + 1e-9;
        for d in ab_join(&q, &r, w) {
            prop_assert!(d >= 0.0 && d <= bound, "d = {}", d);
        }
    }

    #[test]
    fn z_normalize_properties(xs in finite_signal(2, 60)) {
        let z = z_normalize(&xs);
        prop_assert_eq!(z.len(), xs.len());
        prop_assert!(mean(&z).abs() < 1e-8);
        let sd = std_dev(&z);
        prop_assert!(sd.abs() < 1e-8 || (sd - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rolling_stats_match_per_window(xs in finite_signal(5, 60), w in 1usize..10) {
        prop_assume!(w <= xs.len());
        let (means, stds) = rolling_mean_std(&xs, w);
        prop_assert_eq!(means.len(), xs.len() - w + 1);
        for i in 0..means.len() {
            let win = &xs[i..i + w];
            prop_assert!((means[i] - mean(win)).abs() < 1e-6);
            // Absolute tolerance 1e-4: with |x| up to 1000 the recurrence's
            // floating-point error on the variance is ~1e-8, hence ~1e-4 on
            // a near-zero standard deviation.
            prop_assert!(
                (stds[i] - std_dev(win)).abs() < 1e-4,
                "window {}: {} vs {}",
                i,
                stds[i],
                std_dev(win)
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(xs in finite_signal(1, 60)) {
        let q0 = quantile(&xs, 0.0);
        let q25 = quantile(&xs, 0.25);
        let q50 = quantile(&xs, 0.5);
        let q75 = quantile(&xs, 0.75);
        let q100 = quantile(&xs, 1.0);
        prop_assert!(q0 <= q25 && q25 <= q50 && q50 <= q75 && q75 <= q100);
        let stats = BoxPlotStats::from(&xs);
        prop_assert_eq!(stats.min, q0);
        prop_assert_eq!(stats.max, q100);
        prop_assert!(stats.min <= stats.mean && stats.mean <= stats.max);
    }

    #[test]
    fn moving_averages_stay_in_range(xs in finite_signal(1, 60), w in 1usize..12) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in moving_average(&xs, w).into_iter().chain(trailing_average(&xs, w)) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn kde_density_is_nonnegative_everywhere(xs in finite_signal(1, 40), probe in -2000.0f64..2000.0) {
        let kde = GaussianKde::fit(&xs);
        let d = kde.density(probe);
        prop_assert!(d.is_finite() && d >= 0.0);
    }

    #[test]
    fn epmf_sums_to_one(xs in proptest::collection::vec(-20i32..20, 1..60)) {
        let vals: Vec<f64> = xs.into_iter().map(f64::from).collect();
        let pmf = Epmf::fit(&vals);
        let total: f64 = pmf.values().iter().map(|&v| pmf.mass(v)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spectral_residual_scores_are_finite(xs in finite_signal(8, 150)) {
        let sr = SpectralResidual::default();
        let scores = sr.scores(&xs);
        prop_assert_eq!(scores.len(), xs.len());
        for s in scores {
            prop_assert!(s.is_finite());
        }
    }
}
