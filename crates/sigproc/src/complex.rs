//! A minimal complex-number type for the FFT substrate.
//!
//! Only the operations the crate needs are implemented; this is not a
//! general-purpose complex library (that is exactly why it stays private to
//! the workspace rather than pulling in an external dependency).

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a real number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates `r * e^{i θ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// The modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument `arg(z)` in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn modulus_and_conjugate() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        // z * conj(z) = |z|^2
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < 1e-12 && p.im.abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn multiplication_rotates() {
        let i = Complex::new(0.0, 1.0);
        let one = Complex::ONE;
        let rotated = one * i * i * i * i;
        assert!((rotated.re - 1.0).abs() < 1e-12);
        assert!(rotated.im.abs() < 1e-12);
    }

    #[test]
    fn scale_and_div() {
        let z = Complex::new(2.0, 6.0);
        assert_eq!(z.scale(0.5), Complex::new(1.0, 3.0));
        assert_eq!(z / 2.0, Complex::new(1.0, 3.0));
    }
}
