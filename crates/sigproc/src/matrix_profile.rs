//! Matrix profile computation in the STOMP style (Yeh et al., ICDM 2016;
//! Zhu et al.'s STOMP ordering) — the substrate behind the Extended-STOMP
//! baseline of the paper (Section 6.1.2).
//!
//! The *AB-join matrix profile* of a query series `Q` against a reference
//! series `N` assigns to each length-`w` subsequence of `Q` the z-normalized
//! Euclidean distance to its nearest neighbour among the length-`w`
//! subsequences of `N`. Anomalous query subsequences have large profile
//! values.
//!
//! The implementation uses the standard running-dot-product recurrence
//!
//! ```text
//! QT[i][j] = QT[i-1][j-1] - q[i-1] n[j-1] + q[i+w-1] n[j+w-1]
//! ```
//!
//! giving `O(|N| * |Q|)` time and `O(|N|)` space, with the distance computed
//! from means and standard deviations:
//!
//! ```text
//! d(i, j) = sqrt(2 w (1 - (QT - w μ_q μ_n) / (w σ_q σ_n)))
//! ```
//!
//! Constant subsequences (zero variance) follow the matrix-profile
//! convention: distance 0 if both sides are constant, `sqrt(w)`-scaled
//! maximal otherwise.

use crate::stats::rolling_mean_std;

/// The AB-join matrix profile of `query` against `reference` with
/// subsequence length `w`: `profile[i]` is the z-normalized distance from
/// `query[i..i+w]` to its nearest neighbour in `reference`.
///
/// # Panics
///
/// Panics if `w` is zero or longer than either series.
pub fn ab_join(query: &[f64], reference: &[f64], w: usize) -> Vec<f64> {
    assert!(w >= 1, "subsequence length must be positive");
    assert!(
        w <= query.len() && w <= reference.len(),
        "subsequence length {w} exceeds series lengths {} / {}",
        query.len(),
        reference.len()
    );
    let nq = query.len() - w + 1;
    let nr = reference.len() - w + 1;
    let (mu_q, sd_q) = rolling_mean_std(query, w);
    let (mu_r, sd_r) = rolling_mean_std(reference, w);
    let wf = w as f64;

    // Dot products of query subsequence i against all reference
    // subsequences, updated by the STOMP recurrence as i advances.
    let mut qt = vec![0.0f64; nr];
    for j in 0..nr {
        qt[j] = dot(&query[0..w], &reference[j..j + w]);
    }
    // First row of dot products of reference subsequences against q[0..w] is
    // qt itself; remember the column-0 products for the recurrence restart.
    let first_col: Vec<f64> = (0..nq).map(|i| dot(&query[i..i + w], &reference[0..w])).collect();

    let mut profile = vec![f64::INFINITY; nq];
    for i in 0..nq {
        if i > 0 {
            // Update qt in place from the previous row, right to left.
            for j in (1..nr).rev() {
                qt[j] = qt[j - 1] - query[i - 1] * reference[j - 1]
                    + query[i + w - 1] * reference[j + w - 1];
            }
            qt[0] = first_col[i];
        }
        let mut best = f64::INFINITY;
        for j in 0..nr {
            let d = znorm_distance(qt[j], mu_q[i], sd_q[i], mu_r[j], sd_r[j], wf);
            if d < best {
                best = d;
            }
        }
        profile[i] = best;
    }
    profile
}

/// Naive `O(|N| * |Q| * w)` AB-join used as a test oracle.
pub fn ab_join_naive(query: &[f64], reference: &[f64], w: usize) -> Vec<f64> {
    assert!(w >= 1 && w <= query.len() && w <= reference.len());
    let nq = query.len() - w + 1;
    let nr = reference.len() - w + 1;
    let mut profile = vec![f64::INFINITY; nq];
    for i in 0..nq {
        let a = crate::stats::z_normalize(&query[i..i + w]);
        for j in 0..nr {
            let b = crate::stats::z_normalize(&reference[j..j + w]);
            let d: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
            if d < profile[i] {
                profile[i] = d;
            }
        }
    }
    profile
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn znorm_distance(qt: f64, mu_a: f64, sd_a: f64, mu_b: f64, sd_b: f64, w: f64) -> f64 {
    let a_const = sd_a < crate::stats::SD_CONSTANT_EPS;
    let b_const = sd_b < crate::stats::SD_CONSTANT_EPS;
    if a_const && b_const {
        return 0.0;
    }
    if a_const || b_const {
        // A constant subsequence z-normalizes to the zero vector, so its
        // distance to any unit-variance z-vector is that vector's norm,
        // sqrt(w) (this matches computing z-normalization explicitly).
        return w.sqrt();
    }
    let corr = (qt - w * mu_a * mu_b) / (w * sd_a * sd_b);
    let val = 2.0 * w * (1.0 - corr.clamp(-1.0, 1.0));
    val.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_a() -> Vec<f64> {
        (0..80).map(|i| (i as f64 * 0.3).sin() * 2.0 + 5.0).collect()
    }

    #[test]
    fn matches_naive_oracle() {
        let q: Vec<f64> = (0..40).map(|i| ((i * 13) % 17) as f64 * 0.5).collect();
        let r: Vec<f64> = (0..55).map(|i| ((i * 7) % 11) as f64 * 0.9).collect();
        for w in [3usize, 5, 10] {
            let fast = ab_join(&q, &r, w);
            let slow = ab_join_naive(&q, &r, w);
            assert_eq!(fast.len(), slow.len());
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((a - b).abs() < 1e-7, "w = {w}, i = {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn identical_series_have_zero_profile() {
        let s = series_a();
        let p = ab_join(&s, &s, 8);
        for (i, d) in p.iter().enumerate() {
            assert!(*d < 1e-5, "index {i}: {d}");
        }
    }

    #[test]
    fn injected_anomaly_peaks_the_profile() {
        let reference = series_a();
        let mut query = series_a();
        // Replace a patch by a wildly different shape.
        for (i, x) in query.iter_mut().enumerate().take(48).skip(40) {
            *x = if i % 2 == 0 { 30.0 } else { -30.0 };
        }
        let w = 8;
        let p = ab_join(&query, &reference, w);
        let argmax = p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert!(
            (33..=47).contains(&argmax),
            "expected peak overlapping the anomaly patch, got {argmax}"
        );
    }

    #[test]
    fn profile_length_is_correct() {
        let q = series_a();
        let r = series_a();
        let p = ab_join(&q, &r, 10);
        assert_eq!(p.len(), q.len() - 10 + 1);
    }

    #[test]
    fn constant_subsequences_follow_convention() {
        let q = vec![2.0; 20];
        let r = series_a();
        let w = 5;
        let p = ab_join(&q, &r, w);
        // Constant query vs non-constant reference: the z-normalized
        // constant is the zero vector, at distance sqrt(w) from every
        // unit-variance z-vector (unless the reference also has a constant
        // window, giving 0).
        for d in &p {
            assert!((d - (w as f64).sqrt()).abs() < 1e-9 || *d == 0.0);
        }
        let p2 = ab_join(&q, &q, w);
        assert!(p2.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn shifted_and_scaled_patterns_match_under_znorm() {
        // z-normalized distance is invariant to offset and positive scaling.
        let base: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin()).collect();
        let scaled: Vec<f64> = base.iter().map(|v| v * 10.0 + 100.0).collect();
        let p = ab_join(&scaled, &base, 6);
        for d in &p {
            assert!(*d < 1e-5, "{d}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds series lengths")]
    fn oversized_window_panics() {
        let _ = ab_join(&[1.0, 2.0], &[1.0, 2.0, 3.0], 3);
    }
}
