//! Principal-component projection of time-series subsequences — the
//! embedding substrate used by the Series2Graph-style anomaly scorer.
//!
//! Series2Graph (Boniol & Palpanas, VLDB 2020) embeds overlapping
//! subsequences into a low-dimensional space before discretizing their
//! angular positions into graph nodes. This module provides:
//!
//! * smoothing of subsequences with a local moving-average convolution, and
//! * projection onto the top principal components, computed with power
//!   iteration + deflation over the subsequence covariance matrix (no
//!   external linear-algebra dependency).

use crate::stats::{mean, moving_average};

/// A 2-D projection of a set of subsequences.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// Projected coordinates, one `(x, y)` pair per subsequence.
    pub points: Vec<(f64, f64)>,
    /// The first principal axis (unit vector of length `dim`).
    pub axis1: Vec<f64>,
    /// The second principal axis (unit vector of length `dim`).
    pub axis2: Vec<f64>,
    /// The mean subsequence subtracted before projection.
    pub center: Vec<f64>,
}

impl Embedding {
    /// Projects a new subsequence (length `dim`, same smoothing already
    /// applied) into the embedding plane.
    pub fn project(&self, subsequence: &[f64]) -> (f64, f64) {
        debug_assert_eq!(subsequence.len(), self.center.len());
        let centered: Vec<f64> = subsequence.iter().zip(&self.center).map(|(v, c)| v - c).collect();
        (dot(&centered, &self.axis1), dot(&centered, &self.axis2))
    }
}

/// Extracts all length-`w` subsequences of `series`, each smoothed with a
/// centered moving average of `smooth` points.
pub fn smoothed_subsequences(series: &[f64], w: usize, smooth: usize) -> Vec<Vec<f64>> {
    assert!(w >= 2 && w <= series.len(), "invalid subsequence length");
    (0..=series.len() - w).map(|i| moving_average(&series[i..i + w], smooth.max(1))).collect()
}

/// Embeds subsequences into the plane spanned by their top two principal
/// components.
///
/// # Panics
///
/// Panics if fewer than 2 subsequences are supplied.
pub fn embed(subsequences: &[Vec<f64>]) -> Embedding {
    assert!(subsequences.len() >= 2, "need at least 2 subsequences to embed");
    let dim = subsequences[0].len();
    debug_assert!(subsequences.iter().all(|s| s.len() == dim));

    // Center.
    let mut center = vec![0.0f64; dim];
    for s in subsequences {
        for (c, v) in center.iter_mut().zip(s) {
            *c += v;
        }
    }
    for c in &mut center {
        *c /= subsequences.len() as f64;
    }
    let centered: Vec<Vec<f64>> =
        subsequences.iter().map(|s| s.iter().zip(&center).map(|(v, c)| v - c).collect()).collect();

    let axis1 = top_component(&centered, None);
    let axis2 = top_component(&centered, Some(&axis1));

    let points = centered.iter().map(|s| (dot(s, &axis1), dot(s, &axis2))).collect();

    Embedding { points, axis1, axis2, center }
}

/// Power iteration for the dominant eigenvector of the covariance operator
/// of `rows`, optionally deflating a previously found component. Operates
/// matrix-free: each step computes `Σ_s (s · v) s` without forming the
/// covariance matrix.
fn top_component(rows: &[Vec<f64>], deflate: Option<&[f64]>) -> Vec<f64> {
    let dim = rows[0].len();
    // Deterministic, well-spread start vector.
    let mut v: Vec<f64> = (0..dim).map(|i| ((i as f64 + 1.0) * 0.754_877).sin() + 0.01).collect();
    if let Some(d) = deflate {
        orthogonalize(&mut v, d);
    }
    normalize(&mut v);

    let mut prev_lambda = 0.0f64;
    for _ in 0..200 {
        // w = C v  (up to scale), computed matrix-free.
        let mut w = vec![0.0f64; dim];
        for s in rows {
            let proj = dot(s, &v);
            for (wi, si) in w.iter_mut().zip(s) {
                *wi += proj * si;
            }
        }
        if let Some(d) = deflate {
            orthogonalize(&mut w, d);
        }
        let lambda = norm(&w);
        if lambda < 1e-12 {
            // Degenerate direction (e.g. all rows identical): return any unit
            // vector orthogonal to the deflated one.
            return fallback_direction(dim, deflate);
        }
        for x in &mut w {
            *x /= lambda;
        }
        let delta = (lambda - prev_lambda).abs();
        v = w;
        if delta < 1e-10 * lambda.max(1.0) {
            break;
        }
        prev_lambda = lambda;
    }
    v
}

fn fallback_direction(dim: usize, deflate: Option<&[f64]>) -> Vec<f64> {
    for i in 0..dim {
        let mut v = vec![0.0f64; dim];
        v[i] = 1.0;
        if let Some(d) = deflate {
            orthogonalize(&mut v, d);
        }
        if norm(&v) > 1e-6 {
            normalize(&mut v);
            return v;
        }
    }
    let mut v = vec![0.0f64; dim];
    v[0] = 1.0;
    v
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn normalize(a: &mut [f64]) {
    let n = norm(a);
    if n > 1e-12 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

fn orthogonalize(v: &mut [f64], against: &[f64]) {
    let proj = dot(v, against);
    for (x, a) in v.iter_mut().zip(against) {
        *x -= proj * a;
    }
}

/// Mean reconstruction error when projecting the rows onto the two axes —
/// a diagnostic for embedding quality (small = the subsequences genuinely
/// live near a plane).
pub fn reconstruction_error(subsequences: &[Vec<f64>], emb: &Embedding) -> f64 {
    let errs: Vec<f64> = subsequences
        .iter()
        .map(|s| {
            let centered: Vec<f64> = s.iter().zip(&emb.center).map(|(v, c)| v - c).collect();
            let a = dot(&centered, &emb.axis1);
            let b = dot(&centered, &emb.axis2);
            centered
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let recon = a * emb.axis1[i] + b * emb.axis2[i];
                    (v - recon) * (v - recon)
                })
                .sum::<f64>()
                .sqrt()
        })
        .collect();
    mean(&errs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.25).sin() * 3.0).collect()
    }

    #[test]
    fn axes_are_orthonormal() {
        let subs = smoothed_subsequences(&sine(100), 10, 3);
        let e = embed(&subs);
        assert!((norm(&e.axis1) - 1.0).abs() < 1e-8);
        assert!((norm(&e.axis2) - 1.0).abs() < 1e-8);
        assert!(dot(&e.axis1, &e.axis2).abs() < 1e-6);
    }

    #[test]
    fn project_matches_embedding_points() {
        let subs = smoothed_subsequences(&sine(60), 8, 1);
        let e = embed(&subs);
        for (s, &(x, y)) in subs.iter().zip(&e.points) {
            let (px, py) = e.project(s);
            assert!((px - x).abs() < 1e-9 && (py - y).abs() < 1e-9);
        }
    }

    #[test]
    fn sine_subsequences_form_a_loop() {
        // Subsequences of a pure sine live on an ellipse in PC space; the
        // radius should therefore be nearly constant.
        let subs = smoothed_subsequences(&sine(400), 25, 1);
        let e = embed(&subs);
        let radii: Vec<f64> = e.points.iter().map(|&(x, y)| x.hypot(y)).collect();
        let mu = mean(&radii);
        assert!(mu > 0.0);
        for r in &radii {
            assert!((r - mu).abs() / mu < 0.25, "radius {r} vs mean {mu}");
        }
    }

    #[test]
    fn pca_recovers_dominant_direction() {
        // Rows = t * d + small noise in an orthogonal direction.
        let d = [0.6f64, 0.8];
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = (i as f64 - 25.0) / 5.0;
                vec![t * d[0] + 0.01 * (i as f64).sin(), t * d[1]]
            })
            .collect();
        let e = embed(&rows);
        let cosine = (e.axis1[0] * d[0] + e.axis1[1] * d[1]).abs();
        assert!(cosine > 0.999, "axis1 = {:?}", e.axis1);
    }

    #[test]
    fn reconstruction_error_small_for_planar_data() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let a = (i as f64 * 0.3).sin();
                let b = (i as f64 * 0.3).cos();
                vec![a, b, a + b, a - b]
            })
            .collect();
        let e = embed(&rows);
        assert!(reconstruction_error(&rows, &e) < 1e-6);
    }

    #[test]
    fn degenerate_identical_rows_do_not_crash() {
        let rows = vec![vec![1.0, 2.0, 3.0]; 10];
        let e = embed(&rows);
        // All centered rows are zero; points collapse to the origin.
        for &(x, y) in &e.points {
            assert!(x.abs() < 1e-9 && y.abs() < 1e-9);
        }
    }

    #[test]
    fn smoothed_subsequences_count_and_len() {
        let subs = smoothed_subsequences(&sine(30), 6, 3);
        assert_eq!(subs.len(), 25);
        assert!(subs.iter().all(|s| s.len() == 6));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn embed_rejects_single_row() {
        let _ = embed(&[vec![1.0, 2.0]]);
    }
}
