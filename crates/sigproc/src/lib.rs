//! # moche-sigproc
//!
//! Signal-processing substrates for the MOCHE reproduction. The paper's
//! experiments depend on several published algorithms whose reference
//! implementations are Python; this crate re-implements each from its
//! original description, dependency-free:
//!
//! | Module | Algorithm | Used by |
//! |---|---|---|
//! | [`complex`], [`fft`] | radix-2 Cooley-Tukey FFT | Spectral Residual |
//! | [`spectral_residual`] | SR saliency (Ren et al., KDD'19) | preference lists (§6.1.1) |
//! | [`kde`] | Gaussian KDE + Silverman bandwidth, empirical pmf | Extended-D3 |
//! | [`matrix_profile`] | STOMP AB-join matrix profile | Extended-STOMP |
//! | [`embedding`] | PCA by power iteration, subsequence embedding | Extended-S2G |
//! | [`series2graph`] | Series2Graph-style shape graph | Extended-S2G |
//! | [`stats`] | descriptive stats, rolling windows, box plots | everything |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod embedding;
pub mod fft;
pub mod kde;
pub mod matrix_profile;
pub mod series2graph;
pub mod spectral_residual;
pub mod stats;

pub use complex::Complex;
pub use embedding::{embed, smoothed_subsequences, Embedding};
pub use kde::{silverman_bandwidth, Epmf, GaussianKde};
pub use matrix_profile::ab_join;
pub use series2graph::{Series2Graph, Series2GraphConfig};
pub use spectral_residual::{SaliencyOverflow, SaliencyScratch, SpectralResidual};
pub use stats::BoxPlotStats;
