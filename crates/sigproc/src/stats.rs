//! Descriptive statistics and rolling-window helpers shared by the
//! signal-processing substrates and the experiment harness.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (`1/n` normalization). Returns 0 for slices shorter
/// than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mu = mean(xs);
    xs.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// The standard-deviation threshold below which a window counts as
/// constant. Shared by [`z_normalize`] and the matrix profile so their
/// degenerate-window conventions agree exactly.
pub const SD_CONSTANT_EPS: f64 = 1e-9;

/// Z-normalizes a slice: subtract the mean, divide by the standard
/// deviation. A (near-)constant slice maps to all zeros, the convention used
/// by matrix-profile implementations.
pub fn z_normalize(xs: &[f64]) -> Vec<f64> {
    let mu = mean(xs);
    let sd = std_dev(xs);
    if sd < SD_CONSTANT_EPS {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - mu) / sd).collect()
}

/// Refills `prefix` with the running sums of `xs` (`prefix[0] = 0`),
/// reusing its allocation — the shared substrate of the rolling-average
/// `_into` variants.
fn prefix_sums_into(xs: &[f64], prefix: &mut Vec<f64>) {
    prefix.clear();
    prefix.reserve(xs.len() + 1);
    prefix.push(0.0f64);
    for &x in xs {
        // lint:allow(panic): `prefix` starts with a pushed 0.0, never empty
        prefix.push(prefix.last().unwrap() + x);
    }
}

/// Simple moving average with a centered window of `w` points (clamped at
/// the edges), matching the average filter `h_q(f)` of the Spectral Residual
/// transform when applied to spectra.
pub fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    let mut prefix = Vec::new();
    let mut out = Vec::new();
    moving_average_into(xs, w, &mut prefix, &mut out);
    out
}

/// [`moving_average`] writing into caller-owned buffers: `prefix` is an
/// opaque scratch area (overwritten every call), `out` receives the
/// averages. A warm `(prefix, out)` pair recomputes with zero heap
/// allocations — the per-alarm shape of the Spectral Residual transform.
///
/// # Panics
///
/// Panics if `w == 0`.
pub fn moving_average_into(xs: &[f64], w: usize, prefix: &mut Vec<f64>, out: &mut Vec<f64>) {
    assert!(w >= 1, "window must be positive");
    let n = xs.len();
    let half = w / 2;
    prefix_sums_into(xs, prefix);
    out.clear();
    out.reserve(n);
    out.extend((0..n).map(|i| {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        (prefix[hi] - prefix[lo]) / (hi - lo) as f64
    }));
}

/// Trailing moving average: position `i` averages the `w` points ending at
/// `i` (fewer near the start). Used by the Spectral Residual score
/// normalization.
pub fn trailing_average(xs: &[f64], w: usize) -> Vec<f64> {
    let mut prefix = Vec::new();
    let mut out = Vec::new();
    trailing_average_into(xs, w, &mut prefix, &mut out);
    out
}

/// [`trailing_average`] writing into caller-owned buffers (see
/// [`moving_average_into`] for the scratch contract).
///
/// # Panics
///
/// Panics if `w == 0`.
pub fn trailing_average_into(xs: &[f64], w: usize, prefix: &mut Vec<f64>, out: &mut Vec<f64>) {
    assert!(w >= 1, "window must be positive");
    let n = xs.len();
    prefix_sums_into(xs, prefix);
    out.clear();
    out.reserve(n);
    out.extend((0..n).map(|i| {
        let lo = (i + 1).saturating_sub(w);
        (prefix[i + 1] - prefix[lo]) / (i + 1 - lo) as f64
    }));
}

/// Rolling mean and standard deviation of every length-`w` window of `xs`
/// (one pass over globally-centered data: subtracting the global mean
/// before the sum/sum-of-squares recurrence avoids the catastrophic
/// cancellation that the raw recurrence suffers when values are large
/// relative to their spread). Returns `(means, stds)` of length
/// `xs.len() - w + 1`.
///
/// # Panics
///
/// Panics if `w == 0` or `w > xs.len()`.
pub fn rolling_mean_std(xs: &[f64], w: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(w >= 1 && w <= xs.len(), "invalid window {w} for length {}", xs.len());
    let n = xs.len() - w + 1;
    let center = mean(xs);
    let mut means = Vec::with_capacity(n);
    let mut stds = Vec::with_capacity(n);
    let mut sum = 0.0f64;
    let mut sumsq = 0.0f64;
    // Length of the run of equal values ending at the current position:
    // lets exactly-constant windows report exactly zero deviation, which
    // the recurrence cannot guarantee under rounding.
    let mut run = 0usize;
    for i in 0..xs.len() {
        run = if i > 0 && xs[i] == xs[i - 1] { run + 1 } else { 1 };
        let x = xs[i] - center;
        sum += x;
        sumsq += x * x;
        if i + 1 >= w {
            if i + 1 > w {
                let out = xs[i - w] - center;
                sum -= out;
                sumsq -= out * out;
            }
            if run >= w {
                means.push(xs[i]);
                stds.push(0.0);
            } else {
                let mu = sum / w as f64;
                let var = (sumsq / w as f64 - mu * mu).max(0.0);
                means.push(mu + center);
                stds.push(var.sqrt());
            }
        }
    }
    (means, stds)
}

/// The `p`-quantile (`0 <= p <= 1`) using linear interpolation between order
/// statistics (type-7, the numpy default).
///
/// # Panics
///
/// Panics on an empty slice or `p` outside `[0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut sorted = xs.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The five-number summary (plus mean) used to draw the paper's Figure 6
/// box plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxPlotStats {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl BoxPlotStats {
    /// Computes the summary of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn from(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "box plot of empty sample");
        let mut sorted = xs.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        Self {
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            // lint:allow(panic): non-emptiness is asserted at entry and is
            // this constructor's documented contract
            max: *sorted.last().unwrap(),
            mean: mean(&sorted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn z_normalize_standardizes() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let z = z_normalize(&xs);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalize_constant_is_zero() {
        assert_eq!(z_normalize(&[3.0; 4]), vec![0.0; 4]);
    }

    #[test]
    fn moving_average_flat_signal() {
        let xs = [2.0; 10];
        assert_eq!(moving_average(&xs, 3), vec![2.0; 10]);
    }

    #[test]
    fn moving_average_centered_window() {
        let xs = [0.0, 0.0, 9.0, 0.0, 0.0];
        let ma = moving_average(&xs, 3);
        assert_eq!(ma, vec![0.0, 3.0, 3.0, 3.0, 0.0]);
    }

    #[test]
    fn trailing_average_ramps_in() {
        let xs = [4.0, 8.0, 0.0, 4.0];
        let ta = trailing_average(&xs, 2);
        assert_eq!(ta, vec![4.0, 6.0, 4.0, 2.0]);
    }

    #[test]
    fn into_variants_match_and_recycle() {
        let xs: Vec<f64> = (0..40).map(|i| ((i * 31) % 13) as f64 * 0.25 - 1.0).collect();
        let mut prefix = Vec::new();
        let mut out = Vec::new();
        for w in [1usize, 2, 3, 7, 40, 100] {
            moving_average_into(&xs, w, &mut prefix, &mut out);
            assert_eq!(out, moving_average(&xs, w), "moving w = {w}");
            trailing_average_into(&xs, w, &mut prefix, &mut out);
            assert_eq!(out, trailing_average(&xs, w), "trailing w = {w}");
        }
        // Warm buffers must not grow on same-shape recomputation.
        let caps = (prefix.capacity(), out.capacity());
        moving_average_into(&xs, 5, &mut prefix, &mut out);
        trailing_average_into(&xs, 5, &mut prefix, &mut out);
        assert_eq!((prefix.capacity(), out.capacity()), caps, "warm _into must reuse buffers");
    }

    #[test]
    fn rolling_stats_match_direct() {
        let xs: Vec<f64> = (0..50).map(|i| ((i * 37) % 11) as f64).collect();
        let w = 7;
        let (means, stds) = rolling_mean_std(&xs, w);
        assert_eq!(means.len(), xs.len() - w + 1);
        for i in 0..means.len() {
            let win = &xs[i..i + w];
            assert!((means[i] - mean(win)).abs() < 1e-9, "mean at {i}");
            assert!((stds[i] - std_dev(win)).abs() < 1e-9, "std at {i}");
        }
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn box_plot_stats_summary() {
        let xs = [6.0, 2.0, 1.0, 3.0, 4.0, 5.0, 7.0];
        let b = BoxPlotStats::from(&xs);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 7.0);
        assert_eq!(b.median, 4.0);
        assert_eq!(b.mean, 4.0);
        assert!(b.q1 < b.median && b.median < b.q3);
    }

    #[test]
    #[should_panic(expected = "invalid window")]
    fn rolling_rejects_oversized_window() {
        let _ = rolling_mean_std(&[1.0, 2.0], 3);
    }
}
