//! The Spectral Residual (SR) saliency transform for time-series anomaly
//! detection, after Ren et al., *Time-Series Anomaly Detection Service at
//! Microsoft*, KDD 2019.
//!
//! The MOCHE paper derives preference lists for its time-series experiments
//! by ranking test-window points by their SR outlying score (Section 6.1.1).
//! The transform:
//!
//! 1. extend the series by `extension` extrapolated points (the SR paper's
//!    trick to score the tail reliably);
//! 2. take the FFT; split the spectrum into amplitude `A(f)` and phase
//!    `P(f)`;
//! 3. compute the *log spectral residual* `R(f) = log A(f) - h_q * log A(f)`
//!    where `h_q` is a length-`q` average filter;
//! 4. invert with the original phase: the *saliency map*
//!    `S(x) = |IFFT(exp(R(f) + i P(f)))|`;
//! 5. score each point by its relative saliency
//!    `score(x) = (S(x) - avg) / avg` against a trailing average.

use crate::complex::Complex;
use crate::fft::{ifft_in_place, rfft_into};
use crate::stats::{moving_average_into, trailing_average_into};
use std::fmt;

/// Reusable scratch for the Spectral Residual transform: the FFT spectrum,
/// the log-amplitude and smoothed planes, the rolling-average prefix sums
/// and the saliency map. One scratch serves any series length; a warm
/// scratch makes [`SpectralResidual::scores_into`] and
/// [`SpectralResidual::saliency_into`] perform **zero** heap allocations —
/// the per-alarm hot path of `moche_stream::DriftMonitor`.
#[derive(Debug, Clone, Default)]
pub struct SaliencyScratch {
    /// The series plus its extrapolated tail.
    extended: Vec<f64>,
    /// FFT buffer (forward spectrum, then the residual inverse).
    spectrum: Vec<Complex>,
    /// `log A(f)` plane.
    log_amp: Vec<f64>,
    /// `h_q * log A(f)` plane.
    smoothed: Vec<f64>,
    /// Prefix sums behind the rolling averages.
    prefix: Vec<f64>,
    /// Saliency map (scores only; `saliency_into` writes to the caller).
    saliency: Vec<f64>,
    /// Trailing average of the saliency map.
    trailing: Vec<f64>,
}

impl SaliencyScratch {
    /// An empty scratch; the first transform through it allocates, later
    /// ones of the same (or smaller) series length reuse every buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The Spectral Residual pipeline numerically broke down: the saliency map
/// contains a non-finite value (FFT overflow on extreme inputs), so the
/// derived outlying scores would be meaningless.
///
/// Returned by [`SpectralResidual::scores_into`]; callers degrade to a
/// neutral preference (identity order) rather than ranking by garbage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaliencyOverflow {
    /// Position of the first non-finite saliency value.
    pub index: usize,
    /// The offending saliency value (`NaN` or infinite).
    pub saliency: f64,
}

impl fmt::Display for SaliencyOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spectral residual overflowed: saliency at position {} is {}",
            self.index, self.saliency
        )
    }
}

impl std::error::Error for SaliencyOverflow {}

/// Configuration of the Spectral Residual transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpectralResidual {
    /// Size of the average filter applied to the log spectrum (`q` in the SR
    /// paper; 3 there and in the reference implementation).
    pub filter_window: usize,
    /// Window of the trailing average used to turn saliency into scores
    /// (`z` in the SR paper; 21 in the reference implementation).
    pub score_window: usize,
    /// Number of extrapolated points appended before the transform (`κ`; 5
    /// in the SR paper).
    pub extension: usize,
    /// How many trailing points are used to fit the extrapolation line.
    pub extension_lookback: usize,
}

impl Default for SpectralResidual {
    fn default() -> Self {
        Self { filter_window: 3, score_window: 21, extension: 5, extension_lookback: 5 }
    }
}

impl SpectralResidual {
    /// Computes the saliency map of `series` (same length as the input).
    ///
    /// # Panics
    ///
    /// Panics if the series is shorter than 4 points or contains non-finite
    /// values.
    pub fn saliency(&self, series: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.saliency_into(series, &mut SaliencyScratch::new(), &mut out);
        out
    }

    /// [`saliency`](Self::saliency) through caller-owned scratch, writing
    /// the map into `out`. Results are identical; a warm
    /// `(scratch, out)` pair recomputes with zero heap allocations.
    ///
    /// # Panics
    ///
    /// As for [`saliency`](Self::saliency).
    pub fn saliency_into(&self, series: &[f64], scratch: &mut SaliencyScratch, out: &mut Vec<f64>) {
        assert!(series.len() >= 4, "spectral residual needs at least 4 points");
        assert!(series.iter().all(|v| v.is_finite()), "series must be finite");

        // Step 1: extend the tail with the SR paper's gradient extrapolation.
        scratch.extended.clear();
        scratch.extended.reserve(series.len() + self.extension);
        scratch.extended.extend_from_slice(series);
        if self.extension > 0 {
            let est = self.estimate_next(series);
            scratch.extended.extend(std::iter::repeat_n(est, self.extension));
        }

        // Step 2: FFT (zero-padded to a power of two).
        rfft_into(&scratch.extended, &mut scratch.spectrum);

        // Step 3: log-amplitude residual.
        scratch.log_amp.clear();
        scratch.log_amp.reserve(scratch.spectrum.len());
        scratch.log_amp.extend(scratch.spectrum.iter().map(|z| z.abs().max(1e-12).ln()));
        moving_average_into(
            &scratch.log_amp,
            self.filter_window,
            &mut scratch.prefix,
            &mut scratch.smoothed,
        );
        // Step 4: rebuild with residual amplitude and original phase.
        for (i, z) in scratch.spectrum.iter_mut().enumerate() {
            let residual = scratch.log_amp[i] - scratch.smoothed[i];
            let phase = z.arg();
            *z = Complex::from_polar(residual.exp(), phase);
        }
        ifft_in_place(&mut scratch.spectrum);
        out.clear();
        out.reserve(series.len());
        out.extend(scratch.spectrum[..series.len()].iter().map(|z| z.abs()));
    }

    /// Computes the per-point outlying score: relative deviation of the
    /// saliency map from its trailing average. Larger scores mean more
    /// anomalous points.
    ///
    /// No numerical validation is applied: on pathological inputs (values
    /// near `f64::MAX`, where the FFT overflows) the scores can silently
    /// degenerate. Use [`scores_into`](Self::scores_into) to detect that.
    pub fn scores(&self, series: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.scores_raw_into(series, &mut SaliencyScratch::new(), &mut out);
        out
    }

    /// [`scores`](Self::scores) through caller-owned scratch, writing the
    /// scores into `out` — and **validating** them: if the saliency map
    /// contains a non-finite value (FFT overflow on extreme but finite
    /// inputs), the transform has numerically broken down and every score
    /// derived from it is meaningless, so the call is rejected instead of
    /// returning garbage. On success the scores are identical to
    /// [`scores`](Self::scores); a warm `(scratch, out)` pair recomputes
    /// with zero heap allocations.
    ///
    /// # Errors
    ///
    /// Returns [`SaliencyOverflow`] (leaving `out` empty, never partially
    /// filled) when the saliency map is non-finite.
    ///
    /// # Panics
    ///
    /// As for [`saliency`](Self::saliency).
    pub fn scores_into(
        &self,
        series: &[f64],
        scratch: &mut SaliencyScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), SaliencyOverflow> {
        self.scores_raw_into(series, scratch, out);
        if let Some(index) = scratch.saliency.iter().position(|s| !s.is_finite()) {
            let saliency = scratch.saliency[index];
            out.clear();
            return Err(SaliencyOverflow { index, saliency });
        }
        Ok(())
    }

    /// The unvalidated score pipeline shared by [`scores`](Self::scores)
    /// and [`scores_into`](Self::scores_into).
    fn scores_raw_into(&self, series: &[f64], scratch: &mut SaliencyScratch, out: &mut Vec<f64>) {
        let mut saliency = std::mem::take(&mut scratch.saliency);
        self.saliency_into(series, scratch, &mut saliency);
        trailing_average_into(
            &saliency,
            self.score_window,
            &mut scratch.prefix,
            &mut scratch.trailing,
        );
        out.clear();
        out.reserve(saliency.len());
        out.extend(saliency.iter().zip(&scratch.trailing).map(|(&s, &a)| {
            if a > 1e-12 {
                (s - a) / a
            } else {
                0.0
            }
        }));
        scratch.saliency = saliency;
    }

    /// The SR paper's estimate of the next point: the last value plus the
    /// mean slope over the lookback window.
    fn estimate_next(&self, series: &[f64]) -> f64 {
        let n = series.len();
        let lb = self.extension_lookback.min(n - 1).max(1);
        let last = series[n - 1];
        let mut grad_sum = 0.0;
        for i in 1..=lb {
            grad_sum += (last - series[n - 1 - i]) / i as f64;
        }
        last + grad_sum / lb as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_series(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.1).sin() * 5.0 + 10.0).collect()
    }

    #[test]
    fn spike_gets_the_top_score() {
        let mut series = smooth_series(200);
        series[120] += 40.0;
        let sr = SpectralResidual::default();
        let scores = sr.scores(&series);
        let argmax =
            scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        assert!(
            (118..=122).contains(&argmax),
            "expected the spike at 120 to dominate, got index {argmax}"
        );
    }

    #[test]
    fn multiple_spikes_rank_above_normal_points() {
        let mut series = smooth_series(300);
        for &i in &[50usize, 150, 250] {
            series[i] += 30.0;
        }
        let sr = SpectralResidual::default();
        let scores = sr.scores(&series);
        let mut ranked: Vec<usize> = (0..series.len()).collect();
        ranked.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
        let top: Vec<usize> = ranked[..9].to_vec();
        for &spike in &[50usize, 150, 250] {
            assert!(
                top.iter().any(|&i| i.abs_diff(spike) <= 2),
                "spike {spike} missing from top-9 {top:?}"
            );
        }
    }

    #[test]
    fn saliency_preserves_length() {
        let series = smooth_series(123);
        let sr = SpectralResidual::default();
        assert_eq!(sr.saliency(&series).len(), 123);
        assert_eq!(sr.scores(&series).len(), 123);
    }

    #[test]
    fn constant_series_is_unremarkable() {
        let series = vec![5.0; 100];
        let sr = SpectralResidual::default();
        let scores = sr.scores(&series);
        // No point should stand out strongly on a constant series.
        let max = scores.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 5.0, "max score {max} on constant series");
    }

    #[test]
    fn scores_are_finite() {
        let mut series = smooth_series(64);
        series[10] = 0.0;
        series[11] = 100.0;
        let sr = SpectralResidual::default();
        for s in sr.scores(&series) {
            assert!(s.is_finite());
        }
    }

    #[test]
    fn no_extension_variant_works() {
        let series = smooth_series(50);
        let sr = SpectralResidual { extension: 0, ..Default::default() };
        assert_eq!(sr.saliency(&series).len(), 50);
    }

    #[test]
    fn estimate_next_extrapolates_linear_trend() {
        let series: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        let sr = SpectralResidual::default();
        let est = sr.estimate_next(&series);
        assert!((est - 40.0).abs() < 1e-9, "est = {est}");
    }

    #[test]
    fn into_variants_match_allocating_paths_bit_exactly() {
        let mut series = smooth_series(150);
        series[40] += 25.0;
        series[90] -= 60.0;
        let sr = SpectralResidual::default();
        let mut scratch = SaliencyScratch::new();
        let mut out = Vec::new();
        for len in [150usize, 64, 17, 4] {
            sr.saliency_into(&series[..len], &mut scratch, &mut out);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out), bits(&sr.saliency(&series[..len])), "saliency len {len}");
            sr.scores_into(&series[..len], &mut scratch, &mut out).unwrap();
            assert_eq!(bits(&out), bits(&sr.scores(&series[..len])), "scores len {len}");
        }
    }

    #[test]
    fn warm_scratch_reuses_every_buffer() {
        let series = smooth_series(100);
        let sr = SpectralResidual::default();
        let mut scratch = SaliencyScratch::new();
        let mut out = Vec::new();
        sr.scores_into(&series, &mut scratch, &mut out).unwrap();
        let caps = (
            scratch.extended.capacity(),
            scratch.spectrum.capacity(),
            scratch.log_amp.capacity(),
            scratch.smoothed.capacity(),
            scratch.prefix.capacity(),
            scratch.saliency.capacity(),
            scratch.trailing.capacity(),
            out.capacity(),
        );
        for _ in 0..5 {
            sr.scores_into(&series, &mut scratch, &mut out).unwrap();
        }
        let after = (
            scratch.extended.capacity(),
            scratch.spectrum.capacity(),
            scratch.log_amp.capacity(),
            scratch.smoothed.capacity(),
            scratch.prefix.capacity(),
            scratch.saliency.capacity(),
            scratch.trailing.capacity(),
            out.capacity(),
        );
        assert_eq!(caps, after, "warm scores_into must not grow any buffer");
    }

    #[test]
    fn overflowing_series_is_rejected_not_garbage() {
        // Finite inputs near f64::MAX overflow the FFT butterflies: the
        // saliency map degenerates to non-finite values and every derived
        // score is meaningless. scores() silently returns them (all-zero
        // here); scores_into() must reject instead.
        let huge = vec![1.5e308, 1.5e308, 1.5e308, 1.5e308, 1.5e308, 1.5e308];
        let sr = SpectralResidual::default();
        assert!(sr.saliency(&huge).iter().any(|s| !s.is_finite()), "setup: FFT must overflow");
        let mut scratch = SaliencyScratch::new();
        let mut out = Vec::new();
        let err = sr.scores_into(&huge, &mut scratch, &mut out).unwrap_err();
        assert!(!err.saliency.is_finite());
        assert!(out.is_empty(), "rejected scores must not leak into out");
        assert!(err.to_string().contains("overflowed"));
        // The scratch stays usable for well-behaved series afterwards.
        let series = smooth_series(64);
        sr.scores_into(&series, &mut scratch, &mut out).unwrap();
        assert_eq!(out, sr.scores(&series));
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn too_short_series_panics() {
        let sr = SpectralResidual::default();
        let _ = sr.saliency(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_series_panics() {
        let sr = SpectralResidual::default();
        let _ = sr.saliency(&[1.0, f64::NAN, 2.0, 3.0]);
    }
}
