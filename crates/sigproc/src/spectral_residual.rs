//! The Spectral Residual (SR) saliency transform for time-series anomaly
//! detection, after Ren et al., *Time-Series Anomaly Detection Service at
//! Microsoft*, KDD 2019.
//!
//! The MOCHE paper derives preference lists for its time-series experiments
//! by ranking test-window points by their SR outlying score (Section 6.1.1).
//! The transform:
//!
//! 1. extend the series by `extension` extrapolated points (the SR paper's
//!    trick to score the tail reliably);
//! 2. take the FFT; split the spectrum into amplitude `A(f)` and phase
//!    `P(f)`;
//! 3. compute the *log spectral residual* `R(f) = log A(f) - h_q * log A(f)`
//!    where `h_q` is a length-`q` average filter;
//! 4. invert with the original phase: the *saliency map*
//!    `S(x) = |IFFT(exp(R(f) + i P(f)))|`;
//! 5. score each point by its relative saliency
//!    `score(x) = (S(x) - avg) / avg` against a trailing average.

use crate::complex::Complex;
use crate::fft::{fft_in_place, ifft_in_place, next_pow2};
use crate::stats::trailing_average;

/// Configuration of the Spectral Residual transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpectralResidual {
    /// Size of the average filter applied to the log spectrum (`q` in the SR
    /// paper; 3 there and in the reference implementation).
    pub filter_window: usize,
    /// Window of the trailing average used to turn saliency into scores
    /// (`z` in the SR paper; 21 in the reference implementation).
    pub score_window: usize,
    /// Number of extrapolated points appended before the transform (`κ`; 5
    /// in the SR paper).
    pub extension: usize,
    /// How many trailing points are used to fit the extrapolation line.
    pub extension_lookback: usize,
}

impl Default for SpectralResidual {
    fn default() -> Self {
        Self { filter_window: 3, score_window: 21, extension: 5, extension_lookback: 5 }
    }
}

impl SpectralResidual {
    /// Computes the saliency map of `series` (same length as the input).
    ///
    /// # Panics
    ///
    /// Panics if the series is shorter than 4 points or contains non-finite
    /// values.
    pub fn saliency(&self, series: &[f64]) -> Vec<f64> {
        assert!(series.len() >= 4, "spectral residual needs at least 4 points");
        assert!(series.iter().all(|v| v.is_finite()), "series must be finite");

        // Step 1: extend the tail with the SR paper's gradient extrapolation.
        let mut extended = series.to_vec();
        if self.extension > 0 {
            let est = self.estimate_next(series);
            extended.extend(std::iter::repeat_n(est, self.extension));
        }

        // Step 2: FFT (zero-padded to a power of two).
        let n = extended.len();
        let padded = next_pow2(n);
        let mut buf: Vec<Complex> = extended.iter().map(|&v| Complex::real(v)).collect();
        buf.resize(padded, Complex::ZERO);
        fft_in_place(&mut buf);

        // Step 3: log-amplitude residual.
        let amplitude: Vec<f64> = buf.iter().map(|z| z.abs()).collect();
        let log_amp: Vec<f64> = amplitude.iter().map(|&a| (a.max(1e-12)).ln()).collect();
        let smoothed = crate::stats::moving_average(&log_amp, self.filter_window);
        // Step 4: rebuild with residual amplitude and original phase.
        for (i, z) in buf.iter_mut().enumerate() {
            let residual = log_amp[i] - smoothed[i];
            let phase = z.arg();
            *z = Complex::from_polar(residual.exp(), phase);
        }
        ifft_in_place(&mut buf);
        let mut sal: Vec<f64> = buf[..n].iter().map(|z| z.abs()).collect();
        sal.truncate(series.len());
        sal
    }

    /// Computes the per-point outlying score: relative deviation of the
    /// saliency map from its trailing average. Larger scores mean more
    /// anomalous points.
    pub fn scores(&self, series: &[f64]) -> Vec<f64> {
        let sal = self.saliency(series);
        let avg = trailing_average(&sal, self.score_window);
        sal.iter().zip(avg).map(|(&s, a)| if a > 1e-12 { (s - a) / a } else { 0.0 }).collect()
    }

    /// The SR paper's estimate of the next point: the last value plus the
    /// mean slope over the lookback window.
    fn estimate_next(&self, series: &[f64]) -> f64 {
        let n = series.len();
        let lb = self.extension_lookback.min(n - 1).max(1);
        let last = series[n - 1];
        let mut grad_sum = 0.0;
        for i in 1..=lb {
            grad_sum += (last - series[n - 1 - i]) / i as f64;
        }
        last + grad_sum / lb as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_series(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.1).sin() * 5.0 + 10.0).collect()
    }

    #[test]
    fn spike_gets_the_top_score() {
        let mut series = smooth_series(200);
        series[120] += 40.0;
        let sr = SpectralResidual::default();
        let scores = sr.scores(&series);
        let argmax =
            scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        assert!(
            (118..=122).contains(&argmax),
            "expected the spike at 120 to dominate, got index {argmax}"
        );
    }

    #[test]
    fn multiple_spikes_rank_above_normal_points() {
        let mut series = smooth_series(300);
        for &i in &[50usize, 150, 250] {
            series[i] += 30.0;
        }
        let sr = SpectralResidual::default();
        let scores = sr.scores(&series);
        let mut ranked: Vec<usize> = (0..series.len()).collect();
        ranked.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
        let top: Vec<usize> = ranked[..9].to_vec();
        for &spike in &[50usize, 150, 250] {
            assert!(
                top.iter().any(|&i| i.abs_diff(spike) <= 2),
                "spike {spike} missing from top-9 {top:?}"
            );
        }
    }

    #[test]
    fn saliency_preserves_length() {
        let series = smooth_series(123);
        let sr = SpectralResidual::default();
        assert_eq!(sr.saliency(&series).len(), 123);
        assert_eq!(sr.scores(&series).len(), 123);
    }

    #[test]
    fn constant_series_is_unremarkable() {
        let series = vec![5.0; 100];
        let sr = SpectralResidual::default();
        let scores = sr.scores(&series);
        // No point should stand out strongly on a constant series.
        let max = scores.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 5.0, "max score {max} on constant series");
    }

    #[test]
    fn scores_are_finite() {
        let mut series = smooth_series(64);
        series[10] = 0.0;
        series[11] = 100.0;
        let sr = SpectralResidual::default();
        for s in sr.scores(&series) {
            assert!(s.is_finite());
        }
    }

    #[test]
    fn no_extension_variant_works() {
        let series = smooth_series(50);
        let sr = SpectralResidual { extension: 0, ..Default::default() };
        assert_eq!(sr.saliency(&series).len(), 50);
    }

    #[test]
    fn estimate_next_extrapolates_linear_trend() {
        let series: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        let sr = SpectralResidual::default();
        let est = sr.estimate_next(&series);
        assert!((est - 40.0).abs() < 1e-9, "est = {est}");
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn too_short_series_panics() {
        let sr = SpectralResidual::default();
        let _ = sr.saliency(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_series_panics() {
        let sr = SpectralResidual::default();
        let _ = sr.saliency(&[1.0, f64::NAN, 2.0, 3.0]);
    }
}
