//! An iterative radix-2 Cooley-Tukey fast Fourier transform.
//!
//! Built as a substrate for the Spectral Residual saliency transform (which
//! the paper uses to derive preference lists from time series). The
//! implementation is the standard bit-reversal + butterfly scheme:
//! `O(n log n)` time, in-place, power-of-two lengths, with helpers to pad
//! real signals.

use crate::complex::Complex;

/// Returns the smallest power of two `>= n` (and `>= 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT. `buf.len()` must be a power of two.
///
/// Computes `X[k] = Σ_j x[j] e^{-2πi jk / n}` (unnormalized).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    transform(buf, false);
}

/// In-place inverse FFT, normalized by `1/n` so that
/// `ifft(fft(x)) == x`. `buf.len()` must be a power of two.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_in_place(buf: &mut [Complex]) {
    transform(buf, true);
    let n = buf.len() as f64;
    for z in buf.iter_mut() {
        *z = *z / n;
    }
}

fn transform(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        let mut start = 0usize;
        while start < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w = w * wlen;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum (length `next_pow2(x.len())`).
pub fn rfft(x: &[f64]) -> Vec<Complex> {
    let mut buf = Vec::new();
    rfft_into(x, &mut buf);
    buf
}

/// [`rfft`] into a caller-owned spectrum buffer: clears `buf`, loads the
/// real signal, zero-pads to the next power of two and transforms in
/// place. A warm buffer recomputes with zero heap allocations — the
/// per-alarm shape of the Spectral Residual transform.
pub fn rfft_into(x: &[f64], buf: &mut Vec<Complex>) {
    let n = next_pow2(x.len());
    buf.clear();
    buf.reserve(n);
    buf.extend(x.iter().map(|&v| Complex::real(v)));
    buf.resize(n, Complex::ZERO);
    fft_in_place(buf);
}

/// Inverse FFT returning only real parts, truncated to `out_len` samples.
pub fn irfft(spectrum: &[Complex], out_len: usize) -> Vec<f64> {
    let mut buf = spectrum.to_vec();
    ifft_in_place(&mut buf);
    buf.truncate(out_len);
    buf.iter().map(|z| z.re).collect()
}

/// Reference `O(n^2)` DFT used by the tests as an oracle.
#[cfg(test)]
fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc += v * Complex::from_polar(1.0, ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "index {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> =
            (0..16).map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos())).collect();
        let mut fast = x.clone();
        fft_in_place(&mut fast);
        let slow = dft_naive(&x);
        assert_close(&fast, &slow, 1e-10);
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Complex> =
            (0..64).map(|i| Complex::new((i as f64).sqrt(), (i as f64 * 0.1).sin())).collect();
        let mut buf = x.clone();
        fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        assert_close(&buf, &x, 1e-10);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> =
            (0..32).map(|i| Complex::real((i as f64 * 0.37).sin() * 2.0)).collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = x.clone();
        fft_in_place(&mut buf);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![Complex::ZERO; 8];
        buf[0] = Complex::ONE;
        fft_in_place(&mut buf);
        for z in &buf {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_signal_concentrates_at_dc() {
        let mut buf = vec![Complex::ONE; 16];
        fft_in_place(&mut buf);
        assert!((buf[0].re - 16.0).abs() < 1e-10);
        for z in &buf[1..] {
            assert!(z.abs() < 1e-10);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 64;
        let freq = 5;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex::real((2.0 * std::f64::consts::PI * freq as f64 * t).cos())
            })
            .collect();
        let mut buf = x;
        fft_in_place(&mut buf);
        let mags: Vec<f64> = buf.iter().map(|z| z.abs()).collect();
        let peak =
            mags.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        assert!(peak == freq || peak == n - freq, "peak at bin {peak}");
    }

    #[test]
    fn rfft_pads_and_irfft_truncates() {
        let x = vec![1.0, 2.0, 3.0]; // padded to 4
        let spec = rfft(&x);
        assert_eq!(spec.len(), 4);
        let back = irfft(&spec, 3);
        assert_eq!(back.len(), 3);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn rfft_into_matches_rfft_and_recycles() {
        let x: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37).sin() * 2.0).collect();
        let mut buf = Vec::new();
        rfft_into(&x, &mut buf);
        assert_eq!(buf, rfft(&x));
        let cap = buf.capacity();
        rfft_into(&x[..33], &mut buf); // same padded length (64)
        assert_eq!(buf, rfft(&x[..33]));
        assert_eq!(buf.capacity(), cap, "warm rfft_into must reuse the buffer");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_panics() {
        let mut buf = vec![Complex::ZERO; 6];
        fft_in_place(&mut buf);
    }

    #[test]
    fn tiny_lengths() {
        let mut one = vec![Complex::real(3.5)];
        fft_in_place(&mut one);
        assert_eq!(one[0], Complex::real(3.5));
        let mut two = vec![Complex::real(1.0), Complex::real(2.0)];
        fft_in_place(&mut two);
        assert!((two[0].re - 3.0).abs() < 1e-12);
        assert!((two[1].re + 1.0).abs() < 1e-12);
    }
}
