//! Gaussian kernel density estimation and empirical probability mass
//! functions — the density substrate behind the Extended-D3 baseline
//! (Section 6.1.2 of the paper).
//!
//! D3 ranks test points by the density ratio `f_T(t) / f_R(t)`. For
//! continuous data the densities are KDEs with Silverman's rule-of-thumb
//! bandwidth; for discrete data (the COVID-19 age groups) the paper uses the
//! empirical pmfs instead, which [`Epmf`] provides.

use crate::stats;

const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// A Gaussian kernel density estimator over a fixed sample.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianKde {
    sample: Vec<f64>,
    bandwidth: f64,
}

impl GaussianKde {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth
    /// `h = 0.9 * min(σ, IQR / 1.34) * n^{-1/5}` (with sane fallbacks for
    /// degenerate samples).
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or NaN values.
    pub fn fit(sample: &[f64]) -> Self {
        Self::fit_with_bandwidth(sample, silverman_bandwidth(sample))
    }

    /// Fits a KDE with an explicit bandwidth.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample, NaN values, or a non-positive bandwidth.
    pub fn fit_with_bandwidth(sample: &[f64], bandwidth: f64) -> Self {
        assert!(!sample.is_empty(), "KDE requires a non-empty sample");
        assert!(sample.iter().all(|v| v.is_finite()), "KDE sample must be finite");
        assert!(bandwidth > 0.0 && bandwidth.is_finite(), "bandwidth must be positive");
        let mut s = sample.to_vec();
        s.sort_unstable_by(f64::total_cmp);
        Self { sample: s, bandwidth }
    }

    /// The bandwidth in use.
    #[inline]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Evaluates the estimated density at `x`.
    ///
    /// Points farther than `8h` from `x` contribute less than `1e-14` of a
    /// kernel and are skipped via a binary-searched window, so evaluation is
    /// `O(log n + w)` with `w` the number of nearby points.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let cutoff = 8.0 * h;
        let lo = self.sample.partition_point(|&v| v < x - cutoff);
        let hi = self.sample.partition_point(|&v| v <= x + cutoff);
        let mut acc = 0.0f64;
        for &v in &self.sample[lo..hi] {
            let u = (x - v) / h;
            acc += (-0.5 * u * u).exp();
        }
        acc * INV_SQRT_2PI / (self.sample.len() as f64 * h)
    }

    /// Evaluates the density at many points.
    pub fn density_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.density(x)).collect()
    }
}

/// Silverman's rule-of-thumb bandwidth with fallbacks: if the IQR is zero
/// use σ alone; if the sample is (near-)constant fall back to 1.0 so the
/// estimator stays well-defined.
pub fn silverman_bandwidth(sample: &[f64]) -> f64 {
    assert!(!sample.is_empty(), "bandwidth of empty sample");
    let n = sample.len() as f64;
    let sd = stats::std_dev(sample);
    let iqr = stats::quantile(sample, 0.75) - stats::quantile(sample, 0.25);
    let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
    let h = 0.9 * spread * n.powf(-0.2);
    if h > 0.0 && h.is_finite() {
        h
    } else {
        1.0
    }
}

/// An empirical probability mass function for discrete-valued data.
#[derive(Debug, Clone, PartialEq)]
pub struct Epmf {
    values: Vec<f64>,
    probs: Vec<f64>,
}

impl Epmf {
    /// Builds the empirical pmf of a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or NaN values.
    pub fn fit(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "EPMF requires a non-empty sample");
        assert!(sample.iter().all(|v| !v.is_nan()), "EPMF sample must not contain NaN");
        let mut sorted = sample.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let mut values = Vec::new();
        let mut probs = Vec::new();
        let n = sorted.len() as f64;
        let mut i = 0usize;
        while i < sorted.len() {
            let v = sorted[i];
            let mut j = i;
            while j < sorted.len() && sorted[j] == v {
                j += 1;
            }
            values.push(v);
            probs.push((j - i) as f64 / n);
            i = j;
        }
        Self { values, probs }
    }

    /// The probability mass at `x` (0 if `x` was never observed).
    pub fn mass(&self, x: f64) -> f64 {
        match self.values.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => self.probs[i],
            Err(_) => 0.0,
        }
    }

    /// Distinct observed values, ascending.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_one() {
        // Riemann sum over a wide grid ~ 1.
        let sample: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin() * 2.0).collect();
        let kde = GaussianKde::fit(&sample);
        let (lo, hi, steps) = (-10.0, 10.0, 4000);
        let dx = (hi - lo) / steps as f64;
        let integral: f64 = (0..steps).map(|i| kde.density(lo + (i as f64 + 0.5) * dx) * dx).sum();
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn density_peaks_near_data() {
        let sample = vec![0.0, 0.1, -0.1, 0.05, -0.05];
        let kde = GaussianKde::fit(&sample);
        assert!(kde.density(0.0) > kde.density(3.0));
        assert!(kde.density(3.0) >= 0.0);
    }

    #[test]
    fn matches_naive_evaluation() {
        let sample: Vec<f64> = (0..25).map(|i| ((i * 7) % 13) as f64 / 3.0).collect();
        let kde = GaussianKde::fit(&sample);
        let h = kde.bandwidth();
        for x in [-1.0, 0.0, 1.7, 4.3] {
            let naive: f64 = sample
                .iter()
                .map(|&v| {
                    let u: f64 = (x - v) / h;
                    (-0.5 * u * u).exp() * INV_SQRT_2PI
                })
                .sum::<f64>()
                / (sample.len() as f64 * h);
            assert!((kde.density(x) - naive).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn silverman_shrinks_with_n() {
        let small: Vec<f64> = (0..10).map(f64::from).collect();
        let large: Vec<f64> = (0..1000).map(|i| f64::from(i % 10)).collect();
        assert!(silverman_bandwidth(&large) < silverman_bandwidth(&small));
    }

    #[test]
    fn constant_sample_fallback() {
        let h = silverman_bandwidth(&[5.0; 20]);
        assert_eq!(h, 1.0);
        let kde = GaussianKde::fit(&[5.0; 20]);
        assert!(kde.density(5.0) > kde.density(50.0));
    }

    #[test]
    fn density_many_matches_single() {
        let kde = GaussianKde::fit(&[0.0, 1.0, 2.0]);
        let xs = [0.5, 1.5];
        let many = kde.density_many(&xs);
        assert_eq!(many, vec![kde.density(0.5), kde.density(1.5)]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn kde_empty_sample_panics() {
        let _ = GaussianKde::fit(&[]);
    }

    #[test]
    fn epmf_masses() {
        let pmf = Epmf::fit(&[1.0, 1.0, 2.0, 3.0]);
        assert_eq!(pmf.mass(1.0), 0.5);
        assert_eq!(pmf.mass(2.0), 0.25);
        assert_eq!(pmf.mass(9.0), 0.0);
        assert_eq!(pmf.values(), &[1.0, 2.0, 3.0]);
        let total: f64 = pmf.values().iter().map(|&v| pmf.mass(v)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn epmf_empty_panics() {
        let _ = Epmf::fit(&[]);
    }
}
