//! A Series2Graph-style subsequence anomaly scorer (after Boniol &
//! Palpanas, *Series2Graph: Graph-based Subsequence Anomaly Detection for
//! Time Series*, VLDB 2020) — the substrate behind the Extended-S2G
//! baseline.
//!
//! The method learns the "shape vocabulary" of a reference series:
//!
//! 1. embed all smoothed length-`w` subsequences into 2-D (PCA plane, see
//!    [`crate::embedding`]);
//! 2. discretize the angular position of each embedded point into `psi`
//!    nodes of a cyclic graph;
//! 3. add a directed edge between the nodes of consecutive subsequences,
//!    accumulating edge weights (how often the reference series makes that
//!    transition).
//!
//! A query subsequence is then scored by walking its own node path through
//! the learned graph: transitions that the reference series took often are
//! "normal" (high weight), rare or unseen transitions are anomalous. The
//! anomaly score of a query subsequence is the mean *unfamiliarity*
//! `1 / (1 + weight)` along its path, matching the original method's
//! intuition (low-weight paths = anomalies) in a dependency-free form.

use crate::embedding::{embed, smoothed_subsequences, Embedding};
use std::collections::HashMap;

/// Configuration of the Series2Graph-style scorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Series2GraphConfig {
    /// Subsequence length `w` (the anomaly length of interest).
    pub subsequence_len: usize,
    /// Number of angular nodes `psi` of the cyclic graph.
    pub nodes: usize,
    /// Moving-average smoothing window applied to subsequences (the paper's
    /// local convolution).
    pub smoothing: usize,
}

impl Default for Series2GraphConfig {
    fn default() -> Self {
        Self { subsequence_len: 16, nodes: 24, smoothing: 3 }
    }
}

/// The learned shape graph of a reference series.
#[derive(Debug, Clone)]
pub struct Series2Graph {
    cfg: Series2GraphConfig,
    embedding: Embedding,
    /// Edge weights keyed by `(from_node, to_node)`.
    edges: HashMap<(usize, usize), f64>,
    /// Node occupancy counts from the reference series.
    node_counts: Vec<f64>,
}

impl Series2Graph {
    /// Learns the graph from a reference series.
    ///
    /// # Panics
    ///
    /// Panics if the series is shorter than `2 * subsequence_len` or the
    /// configuration is degenerate.
    pub fn fit(reference: &[f64], cfg: Series2GraphConfig) -> Self {
        assert!(cfg.subsequence_len >= 2, "subsequence length must be at least 2");
        assert!(cfg.nodes >= 2, "need at least 2 nodes");
        assert!(
            reference.len() >= 2 * cfg.subsequence_len,
            "reference series too short: {} < {}",
            reference.len(),
            2 * cfg.subsequence_len
        );
        let subs = smoothed_subsequences(reference, cfg.subsequence_len, cfg.smoothing);
        let embedding = embed(&subs);
        let nodes: Vec<usize> =
            embedding.points.iter().map(|&p| Self::node_of_point(p, cfg.nodes)).collect();
        let mut edges: HashMap<(usize, usize), f64> = HashMap::new();
        let mut node_counts = vec![0.0f64; cfg.nodes];
        for &n in &nodes {
            node_counts[n] += 1.0;
        }
        for pair in nodes.windows(2) {
            *edges.entry((pair[0], pair[1])).or_insert(0.0) += 1.0;
        }
        Self { cfg, embedding, edges, node_counts }
    }

    fn node_of_point((x, y): (f64, f64), psi: usize) -> usize {
        let theta = y.atan2(x); // (-π, π]
        let frac = (theta + std::f64::consts::PI) / (2.0 * std::f64::consts::PI);
        ((frac * psi as f64) as usize).min(psi - 1)
    }

    /// The configuration used to fit the graph.
    #[inline]
    pub fn config(&self) -> &Series2GraphConfig {
        &self.cfg
    }

    /// Weight of the edge `from -> to` learned from the reference series.
    pub fn edge_weight(&self, from: usize, to: usize) -> f64 {
        self.edges.get(&(from, to)).copied().unwrap_or(0.0)
    }

    /// Node occupancy counts of the reference series.
    pub fn node_counts(&self) -> &[f64] {
        &self.node_counts
    }

    /// Scores every length-`w` subsequence of `query`: higher = more
    /// anomalous (the reference series rarely made those shape
    /// transitions). Returns `query.len() - w + 1` scores.
    ///
    /// # Panics
    ///
    /// Panics if the query is shorter than the subsequence length.
    pub fn score_subsequences(&self, query: &[f64]) -> Vec<f64> {
        let w = self.cfg.subsequence_len;
        assert!(query.len() >= w, "query shorter than subsequence length");
        let subs = smoothed_subsequences(query, w, self.cfg.smoothing);
        let nodes: Vec<usize> = subs
            .iter()
            .map(|s| Self::node_of_point(self.embedding.project(s), self.cfg.nodes))
            .collect();
        // Each subsequence's score is the unfamiliarity of the transition
        // into it (its own node for the first one).
        let mut scores = Vec::with_capacity(nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            let weight =
                if i == 0 { self.node_counts[n] } else { self.edge_weight(nodes[i - 1], n) };
            scores.push(1.0 / (1.0 + weight));
        }
        scores
    }

    /// Per-point anomaly scores for a query series: each point receives the
    /// maximum score among the subsequences covering it, which is how the
    /// Extended-S2G baseline turns subsequence scores into a preference
    /// list over individual data points.
    pub fn score_points(&self, query: &[f64]) -> Vec<f64> {
        let w = self.cfg.subsequence_len;
        if query.len() < w {
            // Degenerate: score everything identically.
            return vec![0.5; query.len()];
        }
        let sub_scores = self.score_subsequences(query);
        let mut out = vec![0.0f64; query.len()];
        #[allow(clippy::needless_range_loop)] // windows overlap; index arithmetic is the point
        for (i, &s) in sub_scores.iter().enumerate() {
            for x in out.iter_mut().skip(i).take(w) {
                if s > *x {
                    *x = s;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.2).sin() * 4.0 + 10.0).collect()
    }

    #[test]
    fn normal_query_scores_low_anomalous_scores_high() {
        let reference = periodic(600);
        let graph = Series2Graph::fit(&reference, Series2GraphConfig::default());

        let normal = periodic(200);
        let mut anomalous = periodic(200);
        for (i, x) in anomalous.iter_mut().enumerate().take(110).skip(90) {
            *x = if i % 2 == 0 { 50.0 } else { -50.0 };
        }
        let s_norm = graph.score_subsequences(&normal);
        let s_anom = graph.score_subsequences(&anomalous);
        let mean_norm: f64 = s_norm.iter().sum::<f64>() / s_norm.len() as f64;
        let peak_anom = s_anom.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            peak_anom > mean_norm * 2.0,
            "anomaly peak {peak_anom} should dominate normal mean {mean_norm}"
        );
    }

    #[test]
    fn point_scores_cover_anomalous_region() {
        let reference = periodic(600);
        let graph = Series2Graph::fit(&reference, Series2GraphConfig::default());
        let mut query = periodic(300);
        for x in &mut query[140..160] {
            *x += 60.0;
        }
        let scores = graph.score_points(&query);
        assert_eq!(scores.len(), query.len());
        let mut ranked: Vec<usize> = (0..query.len()).collect();
        // Index tie-break, as in `PreferenceList::from_scores_desc`: equal
        // scores must rank deterministically across platforms and sorts.
        ranked.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
        // Some of the top-ranked points must fall inside the anomaly window
        // (smoothing and subsequence extent blur the exact boundary).
        let hits = ranked[..40].iter().filter(|&&i| (130..170).contains(&i)).count();
        assert!(hits >= 10, "only {hits} of the top 40 points overlap the anomaly");
    }

    #[test]
    fn tied_scores_rank_deterministically_by_index() {
        let reference = periodic(300);
        let graph = Series2Graph::fit(&reference, Series2GraphConfig::default());
        // The degenerate short query scores every point identically — an
        // all-ties ranking input.
        let scores = graph.score_points(&[7.0, 7.0, 7.0, 7.0]);
        assert!(scores.windows(2).all(|w| w[0] == w[1]), "scores must tie: {scores:?}");
        let rank = |scores: &[f64]| {
            let mut ranked: Vec<usize> = (0..scores.len()).collect();
            ranked.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
            ranked
        };
        assert_eq!(rank(&scores), vec![0, 1, 2, 3], "ties must resolve by ascending index");
        // Ties embedded among distinct scores break by index too.
        assert_eq!(rank(&[0.5, 0.9, 0.5, 0.9, 0.1]), vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn edge_weights_count_transitions() {
        let reference = periodic(400);
        let graph = Series2Graph::fit(&reference, Series2GraphConfig::default());
        let total_edges: f64 = graph.edges.values().sum();
        let expected = (reference.len() - graph.cfg.subsequence_len + 1 - 1) as f64;
        assert_eq!(total_edges, expected);
        let total_nodes: f64 = graph.node_counts().iter().sum();
        assert_eq!(total_nodes, expected + 1.0);
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let reference = periodic(300);
        let graph = Series2Graph::fit(&reference, Series2GraphConfig::default());
        for s in graph.score_subsequences(&periodic(100)) {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn short_query_degenerates_gracefully() {
        let reference = periodic(300);
        let graph = Series2Graph::fit(&reference, Series2GraphConfig::default());
        let scores = graph.score_points(&[1.0, 2.0, 3.0]);
        assert_eq!(scores, vec![0.5; 3]);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn fit_rejects_short_reference() {
        let _ = Series2Graph::fit(&[1.0; 10], Series2GraphConfig::default());
    }

    #[test]
    fn node_of_point_covers_all_sectors() {
        let psi = 8;
        let mut seen = vec![false; psi];
        for k in 0..64 {
            let theta =
                -std::f64::consts::PI + (k as f64 + 0.5) / 64.0 * 2.0 * std::f64::consts::PI;
            let p = (theta.cos(), theta.sin());
            let n = Series2Graph::node_of_point(p, psi);
            assert!(n < psi);
            seen[n] = true;
        }
        assert!(seen.iter().all(|&s| s), "sectors missed: {seen:?}");
    }
}
